package hierstore

import (
	"fmt"
	"math/rand"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// checkHierInvariants verifies the structural promises of the engine:
//
//  1. parent/child links are bidirectional and typed per the schema;
//  2. twins are ordered by their sequence field with no duplicates;
//  3. the hierarchic sequence visits every live segment exactly once.
func checkHierInvariants(t *testing.T, db *DB) {
	t.Helper()
	seen := map[SegID]bool{}
	var walk func(id SegID, parentType string, parent SegID)
	walk = func(id SegID, parentType string, parent SegID) {
		if seen[id] {
			t.Fatalf("segment %d visited twice", id)
		}
		seen[id] = true
		if db.ParentOf(id) != parent {
			t.Fatalf("segment %d: ParentOf=%d want %d", id, db.ParentOf(id), parent)
		}
		segType := db.Schema().Segment(db.TypeOf(id))
		if segType == nil {
			t.Fatalf("segment %d has unknown type %q", id, db.TypeOf(id))
		}
		for _, childType := range segType.Children {
			kids := db.ChildrenOf(id, childType.Name)
			keys := map[string]bool{}
			for i, c := range kids {
				if db.TypeOf(c) != childType.Name {
					t.Fatalf("child %d of %d has type %s, want %s", c, id, db.TypeOf(c), childType.Name)
				}
				if childType.Seq != "" {
					k := db.Data(c).MustGet(childType.Seq).Key()
					if keys[k] {
						t.Fatalf("twins under %d share sequence value", id)
					}
					keys[k] = true
					if i > 0 {
						prev := db.Data(kids[i-1]).MustGet(childType.Seq)
						cur := db.Data(c).MustGet(childType.Seq)
						if cmp, ok := prev.Compare(cur); ok && cmp > 0 {
							t.Fatalf("twins under %d out of order", id)
						}
					}
				}
				walk(c, segType.Name, id)
			}
		}
	}
	rootType := db.Schema().Root
	rootKeys := map[string]bool{}
	for i, r := range db.Roots() {
		if rootType.Seq != "" {
			k := db.Data(r).MustGet(rootType.Seq).Key()
			if rootKeys[k] {
				t.Fatal("duplicate root sequence value")
			}
			rootKeys[k] = true
			if i > 0 {
				prev := db.Data(db.Roots()[i-1]).MustGet(rootType.Seq)
				cur := db.Data(r).MustGet(rootType.Seq)
				if cmp, ok := prev.Compare(cur); ok && cmp > 0 {
					t.Fatal("roots out of order")
				}
			}
		}
		walk(r, "", 0)
	}
	if got := len(db.Sequence()); got != len(seen) {
		t.Fatalf("Sequence visits %d segments, tree holds %d", got, len(seen))
	}
}

// TestRandomDLISequencesPreserveInvariants drives random ISRT/DLET/REPL
// mixes through a PCB and checks the tree invariants throughout.
func TestRandomDLISequencesPreserveInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(schema.EmpDeptHierarchy())
		s := NewSession(db)
		for op := 0; op < 300; op++ {
			switch rng.Intn(8) {
			case 0, 1: // insert a department root
				s.ISRT(value.FromPairs(
					"D#", fmt.Sprintf("D%03d", rng.Intn(40)),
					"DNAME", fmt.Sprintf("N%d", rng.Intn(5)),
					"MGR", "M"), U("DEPT"))
			case 2, 3, 4: // insert an employee under a random department
				roots := db.Roots()
				if len(roots) == 0 {
					continue
				}
				d := db.Data(roots[rng.Intn(len(roots))]).MustGet("D#")
				s.ISRT(value.FromPairs(
					"E#", fmt.Sprintf("E%04d", rng.Intn(500)),
					"ENAME", "X", "AGE", 20+rng.Intn(40), "YEAR-OF-SERVICE", rng.Intn(20)),
					Q("DEPT", "D#", EQ, d), U("EMP"))
			case 5: // replace a random segment's non-key data
				seqn := db.Sequence()
				if len(seqn) == 0 {
					continue
				}
				id := seqn[rng.Intn(len(seqn))]
				s.Reset()
				if db.TypeOf(id) == "EMP" {
					if _, st := s.GU(Q("EMP", "E#", EQ, db.Data(id).MustGet("E#"))); st == OK {
						s.REPL(value.FromPairs("AGE", value.Of(int64(20+rng.Intn(40)))))
					}
				} else {
					if _, st := s.GU(Q("DEPT", "D#", EQ, db.Data(id).MustGet("D#"))); st == OK {
						s.REPL(value.FromPairs("DNAME", value.Str(fmt.Sprintf("N%d", rng.Intn(5)))))
					}
				}
			case 6: // delete a random subtree
				seqn := db.Sequence()
				if len(seqn) == 0 {
					continue
				}
				id := seqn[rng.Intn(len(seqn))]
				s.Reset()
				var st Status
				if db.TypeOf(id) == "EMP" {
					_, st = s.GU(Q("EMP", "E#", EQ, db.Data(id).MustGet("E#")))
				} else {
					_, st = s.GU(Q("DEPT", "D#", EQ, db.Data(id).MustGet("D#")))
				}
				if st == OK {
					s.DLET()
				}
			case 7: // navigate (must not corrupt)
				s.Reset()
				s.GN()
				s.GN(U("EMP"))
				s.GNP(U("EMP"))
			}
			if op%40 == 0 {
				checkHierInvariants(t, db)
			}
		}
		checkHierInvariants(t, db)
		checkHierInvariants(t, db.Clone())
	}
}
