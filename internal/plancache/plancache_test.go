package plancache

import (
	"context"
	"sync"
	"testing"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/fingerprint"
	"progconv/internal/obs"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sweepProgram navigates DIV-EMP, so the figure plan rewrites it and the
// analyzer flags its unpinned observable sweep.
const sweepProgram = `
PROGRAM NOBS DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`

// firstProgram's FIND FIRST draws a process-first warning from the
// analyzer without blocking conversion.
const firstProgram = `
PROGRAM PF DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP-NAME IN EMP.
END PROGRAM.
`

func TestBuildPairExplicitAndClassified(t *testing.T) {
	explicit, err := BuildPair(schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Target == nil || explicit.Paths == nil || explicit.Cost == nil ||
		len(explicit.Rewriters) == 0 || explicit.Description == "" {
		t.Errorf("incomplete pair: %+v", explicit)
	}
	if explicit.Key != fingerprint.PairKey(schema.CompanyV1(), nil, figurePlan()) {
		t.Error("pair key does not match the content key")
	}
	if got, want := explicit.Target.DDL(), explicit.Target.DDL(); got != want {
		t.Errorf("target DDL unstable: %q vs %q", got, want)
	}

	classified, err := BuildPair(schema.CompanyV1(), schema.CompanyV2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if classified.Plan == nil {
		t.Error("classified pair has no plan")
	}
	if classified.Key == explicit.Key {
		t.Error("plan-keyed and diff-keyed pairs collide")
	}
}

func TestBuildPairErrorPhase(t *testing.T) {
	bad := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameField{Record: "NOPE", Old: "X", New: "Y"},
	}}
	_, err := BuildPair(schema.CompanyV1(), nil, bad)
	if err == nil {
		t.Fatal("bad plan built")
	}
	var be *BuildError
	if !asBuildError(err, &be) {
		t.Fatalf("error %T is not a BuildError", err)
	}
	if be.Phase != PhaseApply {
		t.Errorf("phase = %q, want %q", be.Phase, PhaseApply)
	}
}

func asBuildError(err error, target **BuildError) bool {
	be, ok := err.(*BuildError)
	if ok {
		*target = be
	}
	return ok
}

func TestPairCacheHitAndStats(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	a, err := c.Pair(ctx, schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Pair(ctx, schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second lookup rebuilt the pair")
	}
	s := c.Stats()
	if s.PairHits != 1 || s.PairMisses != 1 || s.Pairs != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPairLRUEviction(t *testing.T) {
	c := New(1)
	ctx := context.Background()
	mustPair := func(plan *xform.Plan, dst *schema.Network) *Pair {
		p, err := c.Pair(ctx, schema.CompanyV1(), dst, plan)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	first := mustPair(figurePlan(), nil)
	mustPair(nil, schema.CompanyV2()) // evicts first
	again := mustPair(figurePlan(), nil)
	if first == again {
		t.Error("evicted pair came back identical — not rebuilt")
	}
	s := c.Stats()
	if s.PairMisses != 3 || s.PairEvictions != 2 || s.Pairs != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPairSingleflight(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	const callers = 16
	var wg sync.WaitGroup
	got := make([]*Pair, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Pair(ctx, schema.CompanyV1(), nil, figurePlan())
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different pair", i)
		}
	}
	s := c.Stats()
	if s.PairMisses != 1 {
		t.Errorf("PairMisses = %d, want exactly 1 (singleflight)", s.PairMisses)
	}
	if s.PairHits != callers-1 {
		t.Errorf("PairHits = %d, want %d", s.PairHits, callers-1)
	}
}

// trail extracts the non-cache events (the per-program observable
// stream) from a sink.
func trail(sink *obs.RingSink) []obs.Event {
	var out []obs.Event
	for _, ev := range sink.Events() {
		if ev.Kind == obs.EvCacheHit || ev.Kind == obs.EvCacheMiss || ev.Kind == obs.EvCacheEvict {
			continue
		}
		ev.Seq, ev.T = 0, 0
		out = append(out, ev)
	}
	return out
}

func sameTrail(t *testing.T, what string, cold, warm []obs.Event) {
	t.Helper()
	if len(cold) != len(warm) {
		t.Fatalf("%s: cold emitted %d events, warm %d", what, len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("%s event %d: cold %+v vs warm %+v", what, i, cold[i], warm[i])
		}
	}
}

func TestAnalyzeMemoReplaysHazards(t *testing.T) {
	c := New(4)
	pair, err := BuildPair(schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, firstProgram)
	ph := fingerprint.Program(p)

	coldSink := obs.NewRingSink(64)
	coldCtx := obs.WithEmitter(context.Background(), obs.NewEmitter(coldSink))
	cold := c.Analyze(coldCtx, ph, p, pair)
	if len(cold.Issues) == 0 {
		t.Fatal("fixture program produced no issues; replay test is vacuous")
	}

	warmSink := obs.NewRingSink(64)
	warmCtx := obs.WithEmitter(context.Background(), obs.NewEmitter(warmSink))
	warm := c.Analyze(warmCtx, ph, p, pair)
	if warm != cold {
		t.Error("memo missed: analysis recomputed")
	}
	sameTrail(t, "analysis", trail(coldSink), trail(warmSink))
	s := c.Stats()
	if s.AnalysisHits != 1 || s.AnalysisMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAnalyzeMemoIsPlanIndependent(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	figure, err := BuildPair(schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	diff, err := BuildPair(schema.CompanyV1(), schema.CompanyV2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, sweepProgram)
	ph := fingerprint.Program(p)
	a := c.Analyze(ctx, ph, p, figure)
	b := c.Analyze(ctx, ph, p, diff)
	if a != b {
		t.Error("same source schema, different plan: analysis recomputed")
	}
	if s := c.Stats(); s.AnalysisHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConvertMemoReplaysTrail(t *testing.T) {
	c := New(4)
	pair, err := BuildPair(schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, sweepProgram)
	ph := fingerprint.Program(p)
	abs := analyzer.Analyze(context.Background(), p, pair.Src)

	coldSink := obs.NewRingSink(128)
	coldCtx := obs.WithEmitter(context.Background(), obs.NewEmitter(coldSink))
	cold, err := c.Convert(coldCtx, ph, abs, pair)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Trail) == 0 {
		t.Fatal("fixture conversion recorded no trail; replay test is vacuous")
	}

	warmSink := obs.NewRingSink(128)
	warmCtx := obs.WithEmitter(context.Background(), obs.NewEmitter(warmSink))
	warm, err := c.Convert(warmCtx, ph, abs, pair)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("memo missed: conversion recomputed")
	}
	sameTrail(t, "conversion", trail(coldSink), trail(warmSink))
	if s := c.Stats(); s.ConversionHits != 1 || s.ConversionMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCodegenMemo(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	pair, err := BuildPair(schema.CompanyV1(), nil, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, sweepProgram)
	ph := fingerprint.Program(p)
	abs := analyzer.Analyze(ctx, p, pair.Src)
	res, err := c.Convert(ctx, ph, abs, pair)
	if err != nil {
		t.Fatal(err)
	}

	prog1, opts1, gen1 := c.Codegen(ctx, ph, p.Name, res.Program, pair)
	prog2, opts2, gen2 := c.Codegen(ctx, ph, p.Name, res.Program, pair)
	if prog1 != prog2 || gen1 != gen2 || len(opts1) != len(opts2) {
		t.Error("codegen memo returned a different result")
	}
	if gen1 == "" || dbprog.Format(prog1) != gen1 {
		t.Errorf("generated text does not match the optimized program:\n%s", gen1)
	}
	if s := c.Stats(); s.CodegenHits != 1 || s.CodegenMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}
