package plancache

import (
	"context"

	"progconv/internal/analyzer"
	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/fingerprint"
	"progconv/internal/obs"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// HierPair is the immutable pair-scoped context of one hierarchical
// conversion — Pair's counterpart over the DL/I model. The hierarchical
// catalogue has no composed rewriters, path graph, or cost table: its
// substitution rules live on the plan steps themselves, and the
// optimizer is an identity pass.
type HierPair struct {
	// Key is the content-addressed cache key, domain-separated from
	// network pair keys by fingerprint.HierPairKey.
	Key      fingerprint.Hash
	SrcHash  fingerprint.Hash
	PlanHash fingerprint.Hash

	Src    *schema.Hierarchy
	Plan   *xform.HierPlan
	Target *schema.Hierarchy
	// Description and Invertible are the plan's report-facing summary.
	Description string
	Invertible  bool
}

// BuildHierPair computes every hierarchical pair-scoped artifact cold.
// A nil plan is classified from the (src, dst) hierarchy diff first.
func BuildHierPair(src, dst *schema.Hierarchy, plan *xform.HierPlan) (*HierPair, error) {
	key := fingerprint.HierPairKey(src, dst, plan)
	if plan == nil {
		p, err := xform.ClassifyHier(src, dst)
		if err != nil {
			return nil, &BuildError{Phase: PhaseClassify, Err: err}
		}
		plan = p
	}
	target, err := plan.ApplySchema(src)
	if err != nil {
		return nil, &BuildError{Phase: PhaseApply, Err: err}
	}
	return &HierPair{
		Key:         key,
		SrcHash:     fingerprint.Hierarchy(src),
		PlanHash:    fingerprint.HierPlan(plan),
		Src:         src,
		Plan:        plan,
		Target:      target,
		Description: plan.Describe(),
		Invertible:  plan.Invertible(),
	}, nil
}

// HierPair returns the pair context for a hierarchical (src, dst,
// plan), with the same single-build, LRU, and observability contract as
// Pair. Both models share one pair store and flight map; their key
// spaces are disjoint by fingerprint domain separation.
func (c *Cache) HierPair(ctx context.Context, src, dst *schema.Hierarchy, plan *xform.HierPlan) (*HierPair, error) {
	key := fingerprint.HierPairKey(src, dst, plan)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.pairs.get(string(key)); ok {
		c.stats.PairHits++
		c.mu.Unlock()
		em.CacheHit("", ScopePair, key.Short())
		return v.(*HierPair), nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.PairHits++
		c.mu.Unlock()
		em.CacheHit("", ScopePair, key.Short())
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return f.val.(*HierPair), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.PairMisses++
	c.mu.Unlock()
	em.CacheMiss("", ScopePair, key.Short())

	pair, err := BuildHierPair(src, dst, plan)
	f.val, f.err = pair, err

	c.mu.Lock()
	delete(c.flights, key)
	var evicted string
	var didEvict bool
	if f.err == nil {
		evicted, didEvict = c.pairs.add(string(key), pair)
		if didEvict {
			c.stats.PairEvictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	if didEvict {
		em.CacheEvict(ScopePair, fingerprint.Hash(evicted).Short())
	}
	return pair, err
}

// AnalyzeHier memoizes the Program Analyzer over a hierarchical pair's
// programs, keyed by (program hash, source-hierarchy hash) — the hier
// counterpart of Analyze, replaying hazard events on hits.
func (c *Cache) AnalyzeHier(ctx context.Context, prog fingerprint.Hash, p *dbprog.Program, pair *HierPair) *analyzer.Abstract {
	key := string(prog) + "\x00" + string(pair.SrcHash)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.analyses.get(key); ok {
		c.stats.AnalysisHits++
		c.mu.Unlock()
		em.CacheHit(p.Name, ScopeAnalysis, prog.Short())
		abs := v.(*analyzer.Abstract)
		for _, is := range abs.Issues {
			em.Hazard(p.Name, is.Kind.String(), is.Msg)
		}
		return abs
	}
	c.stats.AnalysisMisses++
	c.mu.Unlock()
	em.CacheMiss(p.Name, ScopeAnalysis, prog.Short())

	abs := analyzer.Analyze(ctx, p, nil)
	if ctx.Err() != nil {
		return abs
	}
	c.store(&c.analyses, key, abs, &c.stats.AnalysisEvictions, ScopeAnalysis, em)
	return abs
}

// ConvertHier memoizes the hierarchical Program Converter by (program
// hash, pair key), replaying the result's trail on hits — the hier
// counterpart of Convert.
func (c *Cache) ConvertHier(ctx context.Context, prog fingerprint.Hash, abs *analyzer.Abstract, pair *HierPair) (*convert.Result, error) {
	key := string(prog) + "\x00" + string(pair.Key)
	em := obs.EmitterFrom(ctx)
	name := abs.Prog.Name
	c.mu.Lock()
	if v, ok := c.conversions.get(key); ok {
		c.stats.ConversionHits++
		c.mu.Unlock()
		em.CacheHit(name, ScopeConversion, prog.Short())
		res := v.(*convert.Result)
		for _, t := range res.Trail {
			if t.Rewrite {
				em.Rewrite(name, t.Label, t.Detail)
			} else {
				em.Hazard(name, t.Label, t.Detail)
			}
		}
		return res, nil
	}
	c.stats.ConversionMisses++
	c.mu.Unlock()
	em.CacheMiss(name, ScopeConversion, prog.Short())

	res, err := convert.ConvertHierAnalyzed(ctx, abs, pair.Src, pair.Plan)
	if err != nil || ctx.Err() != nil {
		return res, err
	}
	c.store(&c.conversions, key, res, &c.stats.ConversionEvictions, ScopeConversion, em)
	return res, nil
}

// CodegenHier memoizes the generated rendering of a converted DL/I
// program by (program hash, pair key). The hierarchical optimizer is an
// identity pass, so the memo carries no refinements — only the
// Program Generator's canonical text.
func (c *Cache) CodegenHier(ctx context.Context, prog fingerprint.Hash, name string, converted *dbprog.Program, pair *HierPair) (*dbprog.Program, string) {
	key := string(prog) + "\x00" + string(pair.Key)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.codegens.get(key); ok {
		c.stats.CodegenHits++
		c.mu.Unlock()
		em.CacheHit(name, ScopeCodegen, prog.Short())
		cg := v.(*codegen)
		return cg.prog, cg.generated
	}
	c.stats.CodegenMisses++
	c.mu.Unlock()
	em.CacheMiss(name, ScopeCodegen, prog.Short())

	generated := dbprog.Format(converted)
	if ctx.Err() != nil {
		return converted, generated
	}
	c.store(&c.codegens, key, &codegen{prog: converted, generated: generated},
		&c.stats.CodegenEvictions, ScopeCodegen, em)
	return converted, generated
}
