// Package plancache is the pair-scoped layer of the Figure 4.1
// pipeline, made explicit: everything the Conversion Analyzer derives
// from the schema pair alone — the classified transformation plan, the
// target schema, the composed rewrite rules, the access-path graph, and
// the optimizer's cost tables — is bundled into an immutable Pair and
// memoized behind a content-addressed cache, so the work is paid once
// per pair instead of once per Run.
//
// The Cache also carries program-scoped memos keyed by content hash:
// analysis results by (program, source schema), conversion and
// optimize/generate results by (program, pair). Memoized results replay
// their event trails on hits, so an observed warm run emits the same
// per-program hazard and rewrite events as a cold one.
//
// One Cache may serve many supervisors concurrently: pair builds are
// deduplicated (concurrent requests for one key share a single build),
// every layer is LRU-bounded, and all lookups are observable through
// cache-hit/miss/evict events and the progconv_cache_* counters.
// Everything a Cache hands out is treated as immutable by the pipeline;
// callers must not mutate schemas, plans, or programs after submitting
// them.
package plancache

import (
	"container/list"
	"context"

	"progconv/internal/analyzer"
	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/fingerprint"
	"progconv/internal/obs"
	"progconv/internal/optimizer"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/xform"
	"sync"
)

// Cache scopes, as they appear in events and exported counters.
const (
	ScopePair       = "pair"
	ScopeAnalysis   = "analysis"
	ScopeConversion = "conversion"
	ScopeCodegen    = "codegen"
)

// Pair is the immutable pair-scoped context of one conversion: every
// artifact that depends only on (source schema, transformation plan).
// Workers only read it, so one Pair is safely shared by any number of
// concurrent program conversions.
type Pair struct {
	// Key is the content-addressed cache key: hash of (source schema,
	// plan) — or (source schema, target schema) when the plan is
	// classified from the schema diff.
	Key fingerprint.Hash
	// SrcHash and PlanHash fingerprint the ingredients individually
	// (analysis memos key on SrcHash alone, since analysis is
	// plan-independent).
	SrcHash  fingerprint.Hash
	PlanHash fingerprint.Hash

	Src    *schema.Network
	Plan   *xform.Plan
	Target *schema.Network
	// Description and Invertible are the plan's report-facing summary,
	// rendered once.
	Description string
	Invertible  bool
	// Rewriters are the plan's composed rewrite rules over Src.
	Rewriters []*xform.Rewriter
	// Paths is the target schema's precomputed access-path graph and
	// Cost the optimizer's cost table derived from it.
	Paths *semantic.PathGraph
	Cost  *optimizer.CostTable
}

// Phases a pair build can fail in.
const (
	PhaseClassify  = "classify"
	PhaseApply     = "apply-schema"
	PhaseRewriters = "rewriters"
)

// BuildError attributes a pair-build failure to its pipeline phase, so
// the supervisor can keep its historical per-phase error wrapping. It
// is transparent: Error and Unwrap defer to the underlying cause.
type BuildError struct {
	Phase string
	Err   error
}

func (e *BuildError) Error() string { return e.Err.Error() }
func (e *BuildError) Unwrap() error { return e.Err }

// BuildPair computes every pair-scoped artifact cold, with no cache. A
// nil plan is classified from the (src, dst) schema diff first.
func BuildPair(src, dst *schema.Network, plan *xform.Plan) (*Pair, error) {
	key := fingerprint.PairKey(src, dst, plan)
	if plan == nil {
		p, err := xform.Classify(src, dst)
		if err != nil {
			return nil, &BuildError{Phase: PhaseClassify, Err: err}
		}
		plan = p
	}
	target, err := plan.ApplySchema(src)
	if err != nil {
		return nil, &BuildError{Phase: PhaseApply, Err: err}
	}
	rewriters, err := plan.Rewriters(src)
	if err != nil {
		return nil, &BuildError{Phase: PhaseRewriters, Err: err}
	}
	paths := semantic.NewPathGraph(target)
	return &Pair{
		Key:         key,
		SrcHash:     fingerprint.Schema(src),
		PlanHash:    fingerprint.Plan(plan),
		Src:         src,
		Plan:        plan,
		Target:      target,
		Description: plan.Describe(),
		Invertible:  plan.Invertible(),
		Rewriters:   rewriters,
		Paths:       paths,
		Cost:        optimizer.NewCostTable(target, paths),
	}, nil
}

// Stats are the cache's cumulative counters plus current sizes. A
// joined in-flight build counts as a hit: the caller did not pay for
// the build.
type Stats struct {
	PairHits, PairMisses, PairEvictions                   int64
	AnalysisHits, AnalysisMisses, AnalysisEvictions       int64
	ConversionHits, ConversionMisses, ConversionEvictions int64
	CodegenHits, CodegenMisses, CodegenEvictions          int64
	// Pairs and Memos are the current entry counts (memos across all
	// three program-scoped layers).
	Pairs, Memos int
}

// Entries is the total number of live cache entries across every
// scope — the figure the telemetry plane exports as a size gauge.
func (s Stats) Entries() int { return s.Pairs + s.Memos }

// Cache is the shared, concurrency-safe conversion cache. The zero
// value is not usable; construct with New.
type Cache struct {
	mu          sync.Mutex
	pairs       lru
	analyses    lru
	conversions lru
	codegens    lru
	flights     map[fingerprint.Hash]*flight
	stats       Stats
}

// flight is one in-progress pair build; joiners wait on done. val is
// the model's pair type (*Pair or *HierPair) — pair keys are
// domain-separated by model, so one flight map serves both without
// ambiguity.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache retaining up to maxPairs pair contexts (<= 0
// means 64). The program-scoped memo layers are each bounded at 512
// entries per retained pair, floored at 4096 — roomy enough that pair
// eviction, not memo pressure, is the working-set limit.
func New(maxPairs int) *Cache {
	if maxPairs <= 0 {
		maxPairs = 64
	}
	memoCap := maxPairs * 512
	if memoCap < 4096 {
		memoCap = 4096
	}
	return &Cache{
		pairs:       newLRU(maxPairs),
		analyses:    newLRU(memoCap),
		conversions: newLRU(memoCap),
		codegens:    newLRU(memoCap),
		flights:     map[fingerprint.Hash]*flight{},
	}
}

// Stats returns a snapshot of the counters and sizes.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Pairs = c.pairs.len()
	s.Memos = c.analyses.len() + c.conversions.len() + c.codegens.len()
	return s
}

// Pair returns the pair context for (src, dst, plan), building it at
// most once per content key across all concurrent callers and retaining
// up to maxPairs contexts LRU. Build errors are returned to every
// waiter but never cached. Cache events go to the ctx emitter.
func (c *Cache) Pair(ctx context.Context, src, dst *schema.Network, plan *xform.Plan) (*Pair, error) {
	key := fingerprint.PairKey(src, dst, plan)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.pairs.get(string(key)); ok {
		c.stats.PairHits++
		c.mu.Unlock()
		em.CacheHit("", ScopePair, key.Short())
		return v.(*Pair), nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.PairHits++
		c.mu.Unlock()
		em.CacheHit("", ScopePair, key.Short())
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return f.val.(*Pair), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.PairMisses++
	c.mu.Unlock()
	em.CacheMiss("", ScopePair, key.Short())

	pair, err := BuildPair(src, dst, plan)
	f.val, f.err = pair, err

	c.mu.Lock()
	delete(c.flights, key)
	var evicted string
	var didEvict bool
	if f.err == nil {
		evicted, didEvict = c.pairs.add(string(key), pair)
		if didEvict {
			c.stats.PairEvictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	if didEvict {
		em.CacheEvict(ScopePair, fingerprint.Hash(evicted).Short())
	}
	return pair, err
}

// Analyze returns the Program Analyzer's result for the program,
// memoized by (program hash, source-schema hash) — analysis is
// plan-independent, so one entry serves every plan over a source
// schema. On a hit the analyzer's hazard events are replayed from the
// memoized findings, so the observed per-program stream matches a cold
// analysis. A result computed under a done ctx may be partial and is
// never memoized.
func (c *Cache) Analyze(ctx context.Context, prog fingerprint.Hash, p *dbprog.Program, pair *Pair) *analyzer.Abstract {
	key := string(prog) + "\x00" + string(pair.SrcHash)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.analyses.get(key); ok {
		c.stats.AnalysisHits++
		c.mu.Unlock()
		em.CacheHit(p.Name, ScopeAnalysis, prog.Short())
		abs := v.(*analyzer.Abstract)
		for _, is := range abs.Issues {
			em.Hazard(p.Name, is.Kind.String(), is.Msg)
		}
		return abs
	}
	c.stats.AnalysisMisses++
	c.mu.Unlock()
	em.CacheMiss(p.Name, ScopeAnalysis, prog.Short())

	abs := analyzer.Analyze(ctx, p, pair.Src)
	if ctx.Err() != nil {
		return abs
	}
	c.store(&c.analyses, key, abs, &c.stats.AnalysisEvictions, ScopeAnalysis, em)
	return abs
}

// Convert returns the Program Converter's result, memoized by (program
// hash, pair key). On a hit the converter's hazards and rewrites are
// replayed from the result's trail. Errors and results computed under a
// done ctx are never memoized.
func (c *Cache) Convert(ctx context.Context, prog fingerprint.Hash, abs *analyzer.Abstract, pair *Pair) (*convert.Result, error) {
	key := string(prog) + "\x00" + string(pair.Key)
	em := obs.EmitterFrom(ctx)
	name := abs.Prog.Name
	c.mu.Lock()
	if v, ok := c.conversions.get(key); ok {
		c.stats.ConversionHits++
		c.mu.Unlock()
		em.CacheHit(name, ScopeConversion, prog.Short())
		res := v.(*convert.Result)
		for _, t := range res.Trail {
			if t.Rewrite {
				em.Rewrite(name, t.Label, t.Detail)
			} else {
				em.Hazard(name, t.Label, t.Detail)
			}
		}
		return res, nil
	}
	c.stats.ConversionMisses++
	c.mu.Unlock()
	em.CacheMiss(name, ScopeConversion, prog.Short())

	res, err := convert.ConvertPrepared(ctx, abs, pair.Src, pair.Rewriters)
	if err != nil || ctx.Err() != nil {
		return res, err
	}
	c.store(&c.conversions, key, res, &c.stats.ConversionEvictions, ScopeConversion, em)
	return res, nil
}

// codegen is one memoized optimize+generate result.
type codegen struct {
	prog      *dbprog.Program
	applied   []optimizer.Optimization
	generated string
}

// Codegen returns the Optimizer's refinement and the Program
// Generator's rendering of a converted program, memoized by (program
// hash, pair key); converted must be the pair's conversion of that
// program (which is itself content-determined, making the key sound).
// A result computed under a done ctx may be unrefined and is never
// memoized.
func (c *Cache) Codegen(ctx context.Context, prog fingerprint.Hash, name string, converted *dbprog.Program, pair *Pair) (*dbprog.Program, []optimizer.Optimization, string) {
	key := string(prog) + "\x00" + string(pair.Key)
	em := obs.EmitterFrom(ctx)
	c.mu.Lock()
	if v, ok := c.codegens.get(key); ok {
		c.stats.CodegenHits++
		c.mu.Unlock()
		em.CacheHit(name, ScopeCodegen, prog.Short())
		cg := v.(*codegen)
		return cg.prog, cg.applied, cg.generated
	}
	c.stats.CodegenMisses++
	c.mu.Unlock()
	em.CacheMiss(name, ScopeCodegen, prog.Short())

	opt, applied := optimizer.OptimizeWith(ctx, converted, pair.Target, pair.Cost)
	generated := dbprog.Format(opt)
	if ctx.Err() != nil {
		return opt, applied, generated
	}
	c.store(&c.codegens, key, &codegen{prog: opt, applied: applied, generated: generated},
		&c.stats.CodegenEvictions, ScopeCodegen, em)
	return opt, applied, generated
}

// store inserts one memo entry, accounting and announcing any eviction.
// Losing a concurrent insert race for the same key is harmless: both
// values are content-determined, so either copy answers future hits.
func (c *Cache) store(l *lru, key string, v any, evictions *int64, scope string, em *obs.Emitter) {
	c.mu.Lock()
	evicted, didEvict := l.add(key, v)
	if didEvict {
		*evictions++
	}
	c.mu.Unlock()
	if didEvict {
		em.CacheEvict(scope, memoShort(evicted))
	}
}

// memoShort renders an evicted memo key (progHash \x00 scopeHash) as
// the program hash's short form.
func memoShort(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return fingerprint.Hash(key[:i]).Short()
		}
	}
	return fingerprint.Hash(key).Short()
}

// lru is a minimal LRU map: container/list for recency, at most one
// eviction per insert. Callers hold the cache mutex.
type lru struct {
	cap int
	ll  *list.List
	idx map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) lru {
	return lru{cap: capacity, ll: list.New(), idx: map[string]*list.Element{}}
}

func (l *lru) len() int { return l.ll.Len() }

func (l *lru) get(key string) (any, bool) {
	el, ok := l.idx[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key and returns the evicted key, if the
// bound forced one out.
func (l *lru) add(key string, v any) (evicted string, didEvict bool) {
	if el, ok := l.idx[key]; ok {
		el.Value.(*lruEntry).val = v
		l.ll.MoveToFront(el)
		return "", false
	}
	l.idx[key] = l.ll.PushFront(&lruEntry{key: key, val: v})
	if l.ll.Len() <= l.cap {
		return "", false
	}
	oldest := l.ll.Back()
	ent := oldest.Value.(*lruEntry)
	l.ll.Remove(oldest)
	delete(l.idx, ent.key)
	return ent.key, true
}
