package dispatch

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"progconv/client"
)

// handleEvents follows a job's event stream across workers. The
// coordinator consumes the owning worker's NDJSON stream and re-frames
// it for the caller (NDJSON, or SSE when the Accept header asks). If
// the worker dies mid-stream the proxy triggers failover, reconnects
// to the new owner, and skips the lines it already relayed — with
// ?omit_timing=1 the re-run's lines are byte-identical, so the caller
// sees one seamless, complete stream.
func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := co.lookup(w, r)
	if j == nil {
		return
	}
	omitTiming := r.URL.Query().Get("omit_timing") != ""
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	sent := 0
	for {
		co.mu.Lock()
		terminal := j.terminal != nil
		url, remoteID := j.workerURL, j.remoteID
		var cli *client.Client
		if wk := co.byURL[url]; wk != nil {
			cli = wk.cli
		}
		co.mu.Unlock()

		if cli == nil || remoteID == "" {
			// Between workers: wait for the re-dispatch to land.
			if terminal || !co.waitLive(r.Context(), j) {
				return
			}
			continue
		}

		stream, err := cli.Events(r.Context(), remoteID, omitTiming)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			if terminal {
				return // stream is gone with its worker; report survives
			}
			co.jobStatus(r.Context(), j) // triggers failover bookkeeping
			if !co.waitLive(r.Context(), j) {
				return
			}
			continue
		}
		n, streamErr := relayLines(w, stream, sse, sent, flusher)
		sent += n
		stream.Close()
		if streamErr == nil {
			// Clean end of stream: the worker closed it because the job
			// reached a terminal state. Freeze the job and finish.
			co.jobStatus(r.Context(), j)
			co.mu.Lock()
			terminal = j.terminal != nil
			co.mu.Unlock()
			if terminal {
				return
			}
			// The worker restarted and is replaying a shorter stream, or
			// the job moved; re-resolve the owner and keep following.
		}
		if r.Context().Err() != nil {
			return
		}
		co.jobStatus(r.Context(), j)
		if !co.waitLive(r.Context(), j) {
			return
		}
	}
}

// relayLines copies complete NDJSON lines from a worker stream to the
// caller, skipping the first `skip` lines (already relayed before a
// failover) and adding SSE framing when asked. It returns how many new
// lines were written and the first read error (nil on clean EOF).
func relayLines(w http.ResponseWriter, stream io.Reader, sse bool, skip int, flusher http.Flusher) (int, error) {
	sc := bufio.NewScanner(stream)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	seen, written := 0, 0
	for sc.Scan() {
		seen++
		if seen <= skip {
			continue
		}
		if sse {
			fmt.Fprint(w, "data: ")
		}
		fmt.Fprintln(w, sc.Text())
		if sse {
			fmt.Fprintln(w)
		}
		written++
		if flusher != nil {
			flusher.Flush()
		}
	}
	return written, sc.Err()
}

// waitLive blocks until the job has an owner again (or is terminal,
// which also counts: its stream history is replayable from the frozen
// report era — the caller's loop will notice and finish). It returns
// false when the request context ends first.
func (co *Coordinator) waitLive(ctx context.Context, j *cjob) bool {
	for {
		co.mu.Lock()
		ready := j.terminal != nil || (j.workerURL != "" && !j.redispatching && co.byURL[j.workerURL] != nil && !co.byURL[j.workerURL].quarantined)
		co.mu.Unlock()
		if ready {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
}
