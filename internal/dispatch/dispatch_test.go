package dispatch

// Coordinator tests: transparent proxying (a client cannot tell the
// coordinator from a standalone daemon), pair-affinity routing, the
// health-checked registry, and the PR's headline invariant — a worker
// killed mid-batch changes nothing about the bytes callers receive.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"progconv/client"
	"progconv/internal/serve"
	"progconv/internal/wire"
)

func TestCoordinatorProxiesTransparently(t *testing.T) {
	f := newFleet(t, 2, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := fleetSpec(0)
	st, err := f.cli.Submit(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.ID, "c-") {
		t.Fatalf("coordinator job ID = %q, want c- prefix", st.ID)
	}
	body, status, err := f.cli.WaitReport(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, directStatus := directReport(t, fleetSpec(0))
	if status != directStatus || !bytes.Equal(body, direct) {
		t.Fatalf("coordinator report (HTTP %d, %d bytes) != standalone report (HTTP %d, %d bytes)",
			status, len(body), directStatus, len(direct))
	}

	// The terminal status carries the exit code and survives the report
	// being frozen.
	final, err := f.cli.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.ExitCode == nil || *final.ExitCode != 0 {
		t.Fatalf("final status = %+v", final)
	}

	// The event stream proxies through with deterministic bytes.
	stream, err := f.cli.Events(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	lines := 0
	sc := bufio.NewScanner(stream)
	for sc.Scan() {
		lines++
	}
	if lines == 0 || sc.Err() != nil {
		t.Fatalf("events: %d lines, err %v", lines, sc.Err())
	}

	// The trace proxies too.
	if trace, err := f.cli.Trace(ctx, st.ID, true); err != nil || len(trace) == 0 {
		t.Fatalf("trace: %d bytes, err %v", len(trace), err)
	}
}

func TestPairAffinityRouting(t *testing.T) {
	f := newFleet(t, 3, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Three jobs of one pair must all land on that pair's home worker.
	home := f.ownerOf(t, fleetSpec(1))
	var ids []string
	for i := 0; i < 3; i++ {
		spec := fleetSpec(1)
		st, err := f.cli.Submit(ctx, &spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := f.cli.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	list, err := f.cli.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range list.Workers {
		want := int64(0)
		if doc.URL == f.workers[home].URL {
			want = 3
		}
		if doc.Routed != want {
			t.Fatalf("worker %s routed=%d, want %d (home=%s)",
				doc.URL, doc.Routed, want, f.workers[home].URL)
		}
	}

	// Distinct pairs spread: with 8 pairs over 3 workers at least two
	// workers see traffic (the rendezvous spread test pins this harder
	// at the unit level).
	for i := 2; i < 10; i++ {
		spec := fleetSpec(i)
		st, err := f.cli.Submit(ctx, &spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := f.cli.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	list, err = f.cli.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, doc := range list.Workers {
		if doc.Routed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("8 distinct pairs all routed to %d worker(s)", busy)
	}
}

// The failover-determinism criterion: kill a worker while its jobs are
// mid-batch; the re-dispatched jobs' reports must be byte-identical to
// a direct single-node run — at parallelism 1 and at parallelism 8.
func TestFailoverDeterminism(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		t.Run("parallel="+itoa(parallel), func(t *testing.T) {
			f := newFleet(t, 2, Config{})
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			// Build a batch whose pads cover both workers, slow enough
			// that the kill lands mid-run.
			specs := make([]wire.JobSpec, 6)
			victimOwned := -1
			for i := range specs {
				specs[i] = slowFleetSpec(i, "150ms")
				specs[i].Options.Parallelism = parallel
				if victimOwned == -1 && f.ownerOf(t, specs[i]) == 0 {
					victimOwned = i
				}
			}
			if victimOwned == -1 {
				t.Skip("no pad in range routes to worker 0; rendezvous degenerate")
			}

			ids := make([]string, len(specs))
			for i := range specs {
				st, err := f.cli.Submit(ctx, &specs[i])
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = st.ID
			}

			// Wait until the victim's job is actually running over
			// there, then pull the plug.
			deadline := time.Now().Add(10 * time.Second)
			for {
				st, err := f.cli.Status(ctx, ids[victimOwned])
				if err != nil {
					t.Fatal(err)
				}
				if st.State == "running" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s never started on the victim worker", ids[victimOwned])
				}
				time.Sleep(5 * time.Millisecond)
			}
			f.killWorker(t, 0)

			// Every job still completes, and every report matches the
			// single-node ground truth byte for byte.
			for i, id := range ids {
				body, status, err := f.cli.WaitReport(ctx, id, 0)
				if err != nil {
					t.Fatalf("job %d (%s): %v", i, id, err)
				}
				direct, directStatus := directReport(t, specs[i])
				if status != directStatus || !bytes.Equal(body, direct) {
					t.Fatalf("job %d: failover report (HTTP %d, %d bytes) != direct (HTTP %d, %d bytes)",
						i, status, len(body), directStatus, len(direct))
				}
			}

			// The kill is visible in the registry: the dead worker is
			// quarantined with failovers recorded.
			list, err := f.cli.Workers(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var dead *wire.WorkerDoc
			for i := range list.Workers {
				if list.Workers[i].URL == f.workers[0].URL {
					dead = &list.Workers[i]
				}
			}
			if dead == nil || dead.State != "quarantined" {
				t.Fatalf("victim worker doc = %+v", dead)
			}
		})
	}
}

func TestCoordinatorListPaginates(t *testing.T) {
	f := newFleet(t, 2, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ids []string
	for i := 0; i < 5; i++ {
		spec := fleetSpec(i % 2)
		st, err := f.cli.Submit(ctx, &spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := f.cli.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	token := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination never terminated")
		}
		page, err := f.cli.List(ctx, client.ListOptions{Limit: 2, PageToken: token})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range page.Jobs {
			got = append(got, st.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(got) != len(ids) {
		t.Fatalf("paged listing returned %d jobs, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("page order[%d] = %s, want %s", i, got[i], ids[i])
		}
	}

	// State filtering works through the proxy.
	page, err := f.cli.List(ctx, client.ListOptions{State: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 5 {
		t.Fatalf("state=done listed %d, want 5", len(page.Jobs))
	}
}

func TestCoordinatorErrorCodesAndDrain(t *testing.T) {
	f := newFleet(t, 1, Config{RetryAfter: 2 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unknown job: 404 not_found.
	_, err := f.cli.Status(ctx, "c-999999")
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != wire.CodeNotFound {
		t.Fatalf("unknown job error = %v", err)
	}

	// Malformed spec: 400 bad_spec (the coordinator validates before
	// routing, so a bad job never burns a worker round-trip).
	bad := fleetSpec(0)
	bad.SourceDDL = "NOT DDL"
	if _, err := f.cli.Submit(ctx, &bad); !asAPIError(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.Code != wire.CodeBadSpec {
		t.Fatalf("bad spec error = %v", err)
	}

	// Draining: 503 + draining code; /readyz flips; status still works.
	f.co.StartDrain()
	spec := fleetSpec(0)
	noRetry := client.New(f.ts.URL, client.WithRetries(0, 0))
	if _, err := noRetry.Submit(ctx, &spec); !asAPIError(err, &apiErr) ||
		apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != wire.CodeDraining {
		t.Fatalf("draining error = %v", err)
	}
	if code := getJSON(t, f.ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: HTTP %d", code)
	}
}

func TestNoHealthyWorker(t *testing.T) {
	f := newFleet(t, 1, Config{RetryAfter: 1 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	f.killWorker(t, 0)
	spec := fleetSpec(0)
	noRetry := client.New(f.ts.URL, client.WithRetries(0, 0))
	_, err := noRetry.Submit(ctx, &spec)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != wire.CodeNoWorker {
		t.Fatalf("no-worker error = %v", err)
	}
	// An empty fleet is not ready.
	if code := getJSON(t, f.ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: HTTP %d", code)
	}
	// And the phantom submission does not linger in the listing.
	page, err := f.cli.List(ctx, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 0 {
		t.Fatalf("rejected submission left %d jobs listed", len(page.Jobs))
	}
}

func TestRegistryRegisterAndReadmit(t *testing.T) {
	f := newFleet(t, 1, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Grow the fleet at runtime.
	extra := newExtraWorker(t)
	doc, err := f.cli.RegisterWorker(ctx, extra.URL)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != "healthy" {
		t.Fatalf("registered worker state = %q", doc.State)
	}
	list, err := f.cli.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(list.Workers))
	}

	// Kill the original worker; jobs still run on the new one.
	f.killWorker(t, 0)
	spec := fleetSpec(0)
	st, err := f.cli.Submit(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.cli.WaitReport(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}

	// Probing a live worker re-admits nothing it shouldn't: the extra
	// worker stays healthy, the dead one stays quarantined.
	f.co.ProbeOnce(ctx)
	list, err = f.cli.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range list.Workers {
		wantState := "healthy"
		if w.URL == f.workers[0].URL {
			wantState = "quarantined"
		}
		if w.State != wantState {
			t.Fatalf("worker %s state = %q, want %q", w.URL, w.State, wantState)
		}
	}

	// A malformed registration is rejected with a code.
	resp, err := http.Post(f.ts.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"v":1,"url":"not-a-url"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad registration: HTTP %d", resp.StatusCode)
	}
}

// newExtraWorker boots one more worker outside the fleet helper.
func newExtraWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{QueueDepth: 64, Runners: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.StartDrain()
	})
	return ts
}

func asAPIError(err error, target **client.APIError) bool {
	return errors.As(err, target)
}
