package dispatch

import (
	"fmt"
	"sort"

	"progconv/internal/fingerprint"
	"progconv/internal/schema/ddl"
	"progconv/internal/wire"
)

// PairFor computes a job's routing fingerprint: the plancache pair key
// of its schema pair, in the spec's data model. Jobs with the same
// model and source/target DDL therefore share a fingerprint and rank
// workers identically, which is what keeps one pair's jobs on one
// worker (and that worker's conversion cache warm). Network and
// hierarchical pairs can never share a fingerprint — the key domains
// are disjoint — so mixed-model fleets route each model independently.
func PairFor(spec *wire.JobSpec) (fingerprint.Hash, error) {
	if spec.ModelName() == wire.ModelHierarchical {
		src, err := ddl.ParseHierarchy(spec.SourceDDL)
		if err != nil {
			return "", fmt.Errorf("source_ddl: %w", err)
		}
		dst, err := ddl.ParseHierarchy(spec.TargetDDL)
		if err != nil {
			return "", fmt.Errorf("target_ddl: %w", err)
		}
		return fingerprint.HierPairKey(src, dst, nil), nil
	}
	src, err := ddl.ParseNetwork(spec.SourceDDL)
	if err != nil {
		return "", fmt.Errorf("source_ddl: %w", err)
	}
	dst, err := ddl.ParseNetwork(spec.TargetDDL)
	if err != nil {
		return "", fmt.Errorf("target_ddl: %w", err)
	}
	return fingerprint.PairKey(src, dst, nil), nil
}

// Rank orders worker URLs for one pair by rendezvous (highest random
// weight) hashing: each worker's score is the fingerprint of
// (pair, worker URL), and workers sort by descending score. The
// ranking is a pure function of its inputs, so every coordinator —
// and every restart — agrees on it: the first healthy entry is the
// pair's home worker, the second is its failover target, and adding
// or removing one worker only moves the pairs that hashed to it.
func Rank(pair fingerprint.Hash, urls []string) []string {
	ranked := append([]string(nil), urls...)
	score := make(map[string]fingerprint.Hash, len(ranked))
	for _, u := range ranked {
		score[u] = fingerprint.Sum("rendezvous", string(pair), u)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := score[ranked[i]], score[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// pick returns the highest-ranked healthy worker for a pair, or nil
// when the whole fleet is quarantined. Callers hold co.mu.
func (co *Coordinator) pick(pair fingerprint.Hash, exclude string) *worker {
	urls := make([]string, 0, len(co.workers))
	for _, w := range co.workers {
		urls = append(urls, w.url)
	}
	for _, u := range Rank(pair, urls) {
		if u == exclude {
			continue
		}
		if w := co.byURL[u]; w != nil && !w.quarantined {
			return w
		}
	}
	// Every healthy worker was excluded (single-worker fleet whose one
	// worker just failed a request): fall back to ignoring exclude so
	// the job can still land somewhere once the worker recovers.
	if exclude != "" {
		for _, u := range Rank(pair, urls) {
			if w := co.byURL[u]; w != nil && !w.quarantined {
				return w
			}
		}
	}
	return nil
}
