package dispatch

// Mixed-model fleet tests: hierarchical (DL/I) jobs route, run, and
// fail over through the same coordinator as network jobs, with reports
// byte-identical to single-node ground truth.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"progconv/internal/corpus"
	"progconv/internal/wire"
)

// hierFleetSpec is the corpus.IMSReorder workload as a coordinator
// submission.
func hierFleetSpec(t *testing.T) wire.JobSpec {
	t.Helper()
	entry, err := corpus.IMSReorder()
	if err != nil {
		t.Fatal(err)
	}
	spec := wire.JobSpec{
		V:         wire.Version,
		Model:     wire.ModelHierarchical,
		SourceDDL: entry.Source.DDL(),
		TargetDDL: entry.Target.DDL(),
		Options:   wire.JobOptions{Parallelism: 1},
	}
	for _, m := range entry.Members {
		spec.Programs = append(spec.Programs, wire.ProgramSpec{Source: m.Source})
	}
	return spec
}

// TestHierPairRouting: hierarchical specs produce a routing fingerprint
// (from the hier key domain) that is stable across identical specs, so
// a pair's jobs share a home worker like network pairs do.
func TestHierPairRouting(t *testing.T) {
	a := hierFleetSpec(t)
	b := hierFleetSpec(t)
	pa, err := PairFor(&a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PairFor(&b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Error("identical hierarchical specs produced distinct routing fingerprints")
	}
	net := fleetSpec(0)
	pn, err := PairFor(&net)
	if err != nil {
		t.Fatal(err)
	}
	if pa == pn {
		t.Error("hierarchical and network pairs share a routing fingerprint")
	}
	// A malformed hierarchy DDL is a routing-time error naming the field.
	bad := hierFleetSpec(t)
	bad.SourceDDL = "HIERARCHY BROKEN"
	if _, err := PairFor(&bad); err == nil {
		t.Error("malformed hierarchy DDL routed without error")
	}
}

// TestMixedModelFleet submits an interleaved network + hierarchical
// batch through a two-worker fleet; every report is byte-identical to
// a standalone daemon running the same spec.
func TestMixedModelFleet(t *testing.T) {
	f := newFleet(t, 2, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	specs := []wire.JobSpec{fleetSpec(0), hierFleetSpec(t), fleetSpec(1), hierFleetSpec(t)}
	ids := make([]string, len(specs))
	for i := range specs {
		st, err := f.cli.Submit(ctx, &specs[i])
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		body, status, err := f.cli.WaitReport(ctx, id, 0)
		if err != nil {
			t.Fatalf("job %d (%s): %v", i, id, err)
		}
		direct, directStatus := directReport(t, specs[i])
		if status != directStatus || !bytes.Equal(body, direct) {
			t.Fatalf("job %d: fleet report (HTTP %d, %d bytes) != direct (HTTP %d, %d bytes)\nfleet:  %.200s\ndirect: %.200s",
				i, status, len(body), directStatus, len(direct), body, direct)
		}
	}

	// The routed counters account for the whole batch.
	list, err := f.cli.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var routed int64
	for _, w := range list.Workers {
		routed += w.Routed
	}
	if routed != int64(len(specs)) {
		t.Errorf("routed = %d, want %d", routed, len(specs))
	}
}

// TestHierFailoverDeterminism: a hierarchical job whose home worker
// dies mid-run is re-dispatched and still produces bytes identical to
// the single-node run — the model flows through the failover path.
func TestHierFailoverDeterminism(t *testing.T) {
	f := newFleet(t, 2, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	spec := hierFleetSpec(t)
	spec.Options.Inject = "delay=150ms@*/analyze"
	victim := f.ownerOf(t, spec)

	st, err := f.cli.Submit(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := f.cli.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", st.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.killWorker(t, victim)

	body, status, err := f.cli.WaitReport(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, directStatus := directReport(t, hierFleetSpec(t))
	if status != directStatus || !bytes.Equal(body, direct) {
		t.Fatalf("failover report (HTTP %d) != direct (HTTP %d)\nfleet:  %.300s\ndirect: %.300s",
			status, directStatus, body, direct)
	}
}
