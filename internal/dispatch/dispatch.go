// Package dispatch is the scale-out layer behind `progconvd -mode
// coordinator`: it routes submitted conversion jobs to a fleet of
// worker daemons (`progconvd -mode worker`) over the same versioned v1
// wire schema the workers serve, so a client cannot tell a
// coordinator from a standalone daemon.
//
// Placement is pair-affine: jobs are ranked onto workers by rendezvous
// hashing of the job's pair fingerprint (the plancache PairKey), so
// every job for one schema pair lands on the same worker and that
// worker's conversion cache stays warm — the fleet-level analogue of
// PR 4's in-process pair cache. The coordinator keeps a health-checked
// worker registry (periodic /readyz probes through the client SDK;
// a run of failed probes quarantines a worker, a later success
// re-admits it) and transparently re-dispatches the jobs of a dead
// worker to the next-ranked one. Re-dispatch is safe because jobs are
// identified by content fingerprint and reports are deterministic: the
// re-run produces byte-identical report JSON, so callers never observe
// which worker (or how many) actually ran their job.
//
// The coordinator serves the complete v1 job API — submit, status,
// paginated listing, report, NDJSON/SSE event streaming, trace,
// cancel — by proxying to the owning worker, plus the registry
// endpoints GET/POST /v1/workers. Routing and failover are observable:
// per-worker routed/failover counters and fleet gauges on /metrics,
// and a worker table on /statusz.
package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"progconv/client"
	"progconv/internal/serve"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
)

// Config tunes a Coordinator. The zero value is usable for tests; real
// deployments list at least one worker.
type Config struct {
	// Workers are the initial worker base URLs, registered in order.
	// More can join later via POST /v1/workers.
	Workers []string
	// ProbeInterval paces the health prober; 0 means 2s. A negative
	// interval disables the background prober — tests and experiments
	// drive ProbeOnce themselves.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe; 0 means 1s.
	ProbeTimeout time.Duration
	// ProbeFailures is how many consecutive failed probes quarantine a
	// worker; 0 means 2.
	ProbeFailures int
	// RetryAfter is the hint returned with 503 responses (draining, no
	// healthy worker); 0 means 1s.
	RetryAfter time.Duration
	// NewClient builds the SDK client for one worker base URL. Nil
	// means client.New(url, client.WithRetries(0, 0)) — the
	// coordinator owns failover, so the per-request retry layer stays
	// off.
	NewClient func(baseURL string) *client.Client
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval == 0 {
		return 2 * time.Second
	}
	return c.ProbeInterval
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return time.Second
	}
	return c.ProbeTimeout
}

func (c Config) probeFailures() int {
	if c.ProbeFailures <= 0 {
		return 2
	}
	return c.ProbeFailures
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// worker is one registry entry. Fields are guarded by the
// coordinator's mutex; the client is immutable after creation.
type worker struct {
	url string
	cli *client.Client

	quarantined bool
	consecFails int
	routed      int64 // jobs dispatched here (including failover arrivals)
	failovers   int64 // jobs re-dispatched away after this worker died
}

func (w *worker) doc() wire.WorkerDoc {
	state := "healthy"
	if w.quarantined {
		state = "quarantined"
	}
	return wire.WorkerDoc{
		V: wire.Version, URL: w.url, State: state,
		Routed: w.routed, Failovers: w.failovers,
		ConsecutiveFailures: w.consecFails,
	}
}

// Coordinator routes jobs across the worker fleet. Create with New,
// mount Handler, and Drain + Close on shutdown.
type Coordinator struct {
	cfg   Config
	start time.Time

	reg       *telemetry.Registry
	routedC   *telemetry.Counters // progconv_dispatch_routed_total{worker}
	failoverC *telemetry.Counters // progconv_dispatch_failovers_total{worker}
	probeC    *telemetry.Counters // progconv_dispatch_probe_failures_total{worker}

	mu       sync.Mutex
	workers  []*worker // registration order
	byURL    map[string]*worker
	jobs     map[string]*cjob
	order    []string // submission order, for deterministic listings
	nextID   int
	draining bool

	stopProbe chan struct{}
	probeDone chan struct{}
	stopOnce  sync.Once
}

// New returns a Coordinator with its health prober started (unless
// the config disables it).
func New(cfg Config) *Coordinator {
	co := &Coordinator{
		cfg:       cfg,
		start:     time.Now(),
		reg:       telemetry.NewRegistry(),
		byURL:     map[string]*worker{},
		jobs:      map[string]*cjob{},
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	co.routedC = co.reg.Counters("progconv_dispatch_routed_total",
		"Jobs dispatched to each worker, including failover re-dispatches.",
		"worker", cfg.Workers...)
	co.failoverC = co.reg.Counters("progconv_dispatch_failovers_total",
		"Jobs re-dispatched away from each worker after it was found dead.",
		"worker", cfg.Workers...)
	co.probeC = co.reg.Counters("progconv_dispatch_probe_failures_total",
		"Failed /readyz probes per worker.",
		"worker", cfg.Workers...)
	co.reg.Gauge("progconv_dispatch_workers",
		"Registered workers.",
		func() float64 { co.mu.Lock(); defer co.mu.Unlock(); return float64(len(co.workers)) })
	co.reg.Gauge("progconv_dispatch_healthy_workers",
		"Registered workers currently healthy (not quarantined).",
		func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			n := 0
			for _, w := range co.workers {
				if !w.quarantined {
					n++
				}
			}
			return float64(n)
		})
	co.reg.Gauge("progconv_dispatch_jobs_total",
		"Jobs admitted by the coordinator since it started.",
		func() float64 { co.mu.Lock(); defer co.mu.Unlock(); return float64(len(co.jobs)) })
	for _, u := range cfg.Workers {
		co.register(u)
	}
	if cfg.ProbeInterval >= 0 {
		go co.probeLoop()
	} else {
		close(co.probeDone)
	}
	return co
}

// newClient builds the SDK client for a worker URL.
func (co *Coordinator) newClient(url string) *client.Client {
	if co.cfg.NewClient != nil {
		return co.cfg.NewClient(url)
	}
	return client.New(url, client.WithRetries(0, 0))
}

// register adds a worker (or re-admits an existing one) and returns
// its registry entry. Safe to call with the coordinator running.
func (co *Coordinator) register(url string) wire.WorkerDoc {
	cli := co.newClient(url)
	co.mu.Lock()
	defer co.mu.Unlock()
	if w := co.byURL[url]; w != nil {
		// Re-registration is the operator's re-admit lever: clear the
		// quarantine and let the prober confirm.
		w.quarantined = false
		w.consecFails = 0
		return w.doc()
	}
	w := &worker{url: url, cli: cli}
	co.workers = append(co.workers, w)
	co.byURL[url] = w
	return w.doc()
}

// probeLoop runs the background health prober until Close.
func (co *Coordinator) probeLoop() {
	defer close(co.probeDone)
	t := time.NewTicker(co.cfg.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-co.stopProbe:
			return
		case <-t.C:
			co.ProbeOnce(context.Background())
		}
	}
}

// ProbeOnce probes every registered worker's /readyz exactly once,
// quarantining workers that reached the failure threshold (and
// re-dispatching their jobs) and re-admitting quarantined workers that
// answered. The background prober calls this on its interval; tests
// and experiments call it directly for deterministic schedules.
func (co *Coordinator) ProbeOnce(ctx context.Context) {
	co.mu.Lock()
	workers := append([]*worker(nil), co.workers...)
	co.mu.Unlock()

	var dead []string
	for _, w := range workers {
		pctx, cancel := context.WithTimeout(ctx, co.cfg.probeTimeout())
		err := w.cli.Ready(pctx)
		cancel()
		co.mu.Lock()
		if err != nil {
			w.consecFails++
			co.probeC.Add(w.url, 1)
			if !w.quarantined && w.consecFails >= co.cfg.probeFailures() {
				w.quarantined = true
				dead = append(dead, w.url)
			}
		} else {
			w.consecFails = 0
			w.quarantined = false
		}
		co.mu.Unlock()
	}
	for _, url := range dead {
		co.failoverWorker(context.Background(), url)
	}
}

// Close stops the health prober. It does not drain jobs; see Drain.
func (co *Coordinator) Close() {
	co.stopOnce.Do(func() { close(co.stopProbe) })
	<-co.probeDone
}

// StartDrain stops admissions: new submissions answer 503 draining
// while status, report and event requests keep working.
func (co *Coordinator) StartDrain() {
	co.mu.Lock()
	co.draining = true
	co.mu.Unlock()
}

// Wait blocks until every admitted job is terminal or ctx ends. It
// polls through the status proxy, so dead workers fail over while
// draining.
func (co *Coordinator) Wait(ctx context.Context) error {
	for {
		co.mu.Lock()
		var pending []*cjob
		for _, id := range co.order {
			if j := co.jobs[id]; !j.isTerminal() {
				pending = append(pending, j)
			}
		}
		co.mu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		for _, j := range pending {
			co.jobStatus(ctx, j)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dispatch: drain interrupted with jobs still in flight")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Drain is StartDrain followed by Wait.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.StartDrain()
	return co.Wait(ctx)
}

// Handler returns the coordinator's HTTP handler — the complete v1
// job API plus the worker-registry endpoints.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", co.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", co.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", co.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", co.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("GET /v1/workers", co.handleWorkers)
	mux.HandleFunc("POST /v1/workers", co.handleRegister)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		co.mu.Lock()
		draining, healthy := co.draining, 0
		for _, wk := range co.workers {
			if !wk.quarantined {
				healthy++
			}
		}
		co.mu.Unlock()
		switch {
		case draining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case healthy == 0:
			http.Error(w, "no healthy workers", http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ready")
		}
	})
	mux.Handle("GET /metrics", co.MetricsHandler())
	mux.Handle("GET /statusz", co.Statusz())
	return mux
}

// MetricsHandler returns the Prometheus scrape handler for the
// coordinator's routing counters and fleet gauges.
func (co *Coordinator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := co.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Statusz returns the human-readable snapshot handler: fleet health,
// the worker table, and the routing counters.
func (co *Coordinator) Statusz() http.Handler {
	return telemetry.StatuszHandler(co.start,
		telemetry.StatusSection{Title: "coordinator", Write: func(w io.Writer) {
			co.mu.Lock()
			jobs, terminal := len(co.jobs), 0
			for _, j := range co.jobs {
				if j.isTerminal() {
					terminal++
				}
			}
			draining := co.draining
			co.mu.Unlock()
			fmt.Fprintf(w, "  jobs        %d admitted, %d terminal\n", jobs, terminal)
			fmt.Fprintf(w, "  draining    %v\n", draining)
		}},
		telemetry.StatusSection{Title: "workers", Write: func(w io.Writer) {
			co.mu.Lock()
			docs := make([]wire.WorkerDoc, 0, len(co.workers))
			for _, wk := range co.workers {
				docs = append(docs, wk.doc())
			}
			co.mu.Unlock()
			for _, d := range docs {
				fmt.Fprintf(w, "  %-40s %-12s routed=%d failovers=%d consec_fails=%d\n",
					d.URL, d.State, d.Routed, d.Failovers, d.ConsecutiveFailures)
			}
		}},
		telemetry.StatusSection{Title: "counters", Write: co.reg.WriteSummary},
	)
}

func (co *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	list := wire.WorkerList{V: wire.Version, Workers: make([]wire.WorkerDoc, 0, len(co.workers))}
	for _, wk := range co.workers {
		list.Workers = append(list.Workers, wk.doc())
	}
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec wire.WorkerSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, "decoding worker: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, co.register(spec.URL))
}

func (co *Coordinator) retryAfterHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int((co.cfg.retryAfter()+time.Second-1)/time.Second)))
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, code wire.ErrorCode, msg string) {
	writeJSON(w, status, wire.ErrorDoc{V: wire.Version, Code: code, Error: msg})
}

// handleList pages through the coordinator's job table with the same
// limit/page_token/state grammar the standalone daemon serves, so SDK
// pagination works identically against either front end. Non-terminal
// jobs are refreshed through the status proxy (triggering failover if
// their worker died), terminal ones serve their frozen status.
func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	start, limit, state, err := serve.ListPage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}
	co.mu.Lock()
	order := append([]string(nil), co.order...)
	co.mu.Unlock()
	doc := wire.JobList{V: wire.Version, Jobs: []wire.JobStatus{}}
	for i := start; i < len(order); i++ {
		if len(doc.Jobs) == limit {
			doc.NextPageToken = serve.PageToken(i)
			break
		}
		co.mu.Lock()
		j := co.jobs[order[i]]
		co.mu.Unlock()
		if j == nil {
			continue
		}
		st := co.jobStatus(r.Context(), j)
		if state != "" && st.State != state {
			continue
		}
		doc.Jobs = append(doc.Jobs, st)
	}
	writeJSON(w, http.StatusOK, doc)
}
