package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"progconv/client"
	"progconv/internal/fingerprint"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
)

// cjob is one job the coordinator admitted. All fields are guarded by
// the coordinator's mutex; network calls never happen under it.
type cjob struct {
	id   string // coordinator-scoped "c-%06d"
	spec *wire.JobSpec
	pair fingerprint.Hash
	tid  telemetry.TraceID
	// inbound is the caller's traceparent header, forwarded verbatim to
	// whichever worker runs the job so the caller's span stays the
	// remote parent; empty means the coordinator derived the trace.
	inbound string

	// workerURL and remoteID name the current owner and the job's ID
	// over there; they change on every (re-)dispatch.
	workerURL string
	remoteID  string
	// redispatching is set while a failover submit is in flight, so
	// concurrent proxies answer "queued" instead of racing a second
	// submit for the same job.
	redispatching bool

	// Terminal jobs are frozen eagerly: the final status plus either
	// the report bytes (done jobs, any exit) or the error document
	// (failed/canceled jobs). After this, the owner may die without
	// the caller ever noticing.
	terminal     *wire.JobStatus
	report       []byte
	reportStatus int
	reportErr    *client.APIError
}

func (j *cjob) isTerminal() bool { return j.terminal != nil }

// traceparent is the header the coordinator forwards on every
// (re-)dispatch of this job — stable across failover, so the job keeps
// one trace ID however many workers end up running it.
func (j *cjob) traceparent() string {
	if j.inbound != "" {
		return j.inbound
	}
	return telemetry.Traceparent(j.tid, telemetry.DeriveSpanID(j.tid, "dispatch"))
}

// echoTraceparent is the response header a worker would have echoed:
// the worker's root span ID is derived from the trace ID alone, so the
// coordinator can reconstruct it without asking.
func (j *cjob) echoTraceparent() string {
	return telemetry.Traceparent(j.tid, telemetry.DeriveSpanID(j.tid, "root"))
}

// rewrite stamps the coordinator-scoped job ID onto a worker status.
func (j *cjob) rewrite(st wire.JobStatus) wire.JobStatus {
	st.ID = j.id
	return st
}

// queuedStatus is what proxies answer while a job is between workers.
func (j *cjob) queuedStatus() wire.JobStatus {
	return wire.JobStatus{V: wire.Version, ID: j.id, State: "queued", TraceID: j.tid.String()}
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec wire.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, "decoding job: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}
	pair, err := PairFor(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}

	inbound := ""
	tid, _, tpErr := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	if tpErr == nil {
		inbound = r.Header.Get("traceparent")
	}

	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		co.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, wire.CodeDraining,
			"coordinator is draining; not accepting jobs")
		return
	}
	co.nextID++
	j := &cjob{
		id:   fmt.Sprintf("c-%06d", co.nextID),
		spec: &spec, pair: pair, inbound: inbound,
	}
	if tpErr != nil {
		tid = telemetry.DeriveTraceID("dispatch", string(pair), j.id)
	}
	j.tid = tid
	co.jobs[j.id] = j
	co.order = append(co.order, j.id)
	co.mu.Unlock()

	if code, apiErr := co.dispatch(r.Context(), j, ""); apiErr != nil {
		// The job never landed anywhere: un-admit it so the listing
		// does not show a phantom, then relay the failure.
		co.mu.Lock()
		delete(co.jobs, j.id)
		co.order = co.order[:len(co.order)-1]
		co.nextID--
		co.mu.Unlock()
		if apiErr.Status == http.StatusTooManyRequests ||
			apiErr.Status == http.StatusServiceUnavailable {
			co.retryAfterHeader(w)
		}
		writeError(w, apiErr.Status, code, apiErr.Message)
		return
	}

	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("traceparent", j.echoTraceparent())
	writeJSON(w, http.StatusAccepted, j.queuedStatus())
}

// dispatch routes j to its highest-ranked healthy worker, skipping
// exclude (the worker that just failed it). Transport errors
// quarantine the target and fall through to the next-ranked worker;
// HTTP errors (a full queue, a draining worker) are the fleet's
// answer and are returned as-is. On success the job's owner fields
// are updated and the routed counter ticks.
func (co *Coordinator) dispatch(ctx context.Context, j *cjob, exclude string) (wire.ErrorCode, *client.APIError) {
	tried := map[string]bool{}
	if exclude != "" {
		tried[exclude] = true
	}
	for {
		co.mu.Lock()
		var target *worker
		urls := make([]string, 0, len(co.workers))
		for _, w := range co.workers {
			urls = append(urls, w.url)
		}
		for _, u := range Rank(j.pair, urls) {
			if w := co.byURL[u]; w != nil && !w.quarantined && !tried[u] {
				target = w
				break
			}
		}
		co.mu.Unlock()
		if target == nil {
			return wire.CodeNoWorker, &client.APIError{
				Status:  http.StatusServiceUnavailable,
				Code:    wire.CodeNoWorker,
				Message: "no healthy worker available; retry later",
			}
		}

		st, err := target.cli.SubmitTrace(ctx, j.spec, j.traceparent())
		if err == nil {
			co.mu.Lock()
			j.workerURL, j.remoteID = target.url, st.ID
			j.redispatching = false
			target.routed++
			co.mu.Unlock()
			co.routedC.Add(target.url, 1)
			return "", nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// The worker answered; its verdict is authoritative for
			// this pair (spilling to another worker would defeat the
			// affinity the ranking exists to provide).
			return apiErr.Code, apiErr
		}
		// Transport error: the worker is unreachable. Quarantine it,
		// fail over its other jobs, and try the next-ranked worker.
		tried[target.url] = true
		co.noteWorkerDown(ctx, target.url)
	}
}

// noteWorkerDown quarantines a worker after a failed request and
// re-dispatches every non-terminal job it owned.
func (co *Coordinator) noteWorkerDown(ctx context.Context, url string) {
	co.mu.Lock()
	w := co.byURL[url]
	if w == nil || w.quarantined {
		co.mu.Unlock()
		return
	}
	w.quarantined = true
	co.mu.Unlock()
	co.failoverWorker(ctx, url)
}

// failoverWorker re-dispatches every non-terminal job owned by a
// now-quarantined worker to its next-ranked healthy peer. Determinism
// makes this invisible: the re-run produces byte-identical reports, so
// a caller polling through the failover sees the job go back to
// "queued" and then finish exactly as it would have on the dead
// worker.
func (co *Coordinator) failoverWorker(ctx context.Context, url string) {
	co.mu.Lock()
	var move []*cjob
	for _, id := range co.order {
		j := co.jobs[id]
		if j != nil && !j.isTerminal() && j.workerURL == url && !j.redispatching {
			j.redispatching = true
			move = append(move, j)
		}
	}
	w := co.byURL[url]
	if w != nil {
		w.failovers += int64(len(move))
	}
	co.mu.Unlock()
	for _, j := range move {
		co.failoverC.Add(url, 1)
		co.dispatch(ctx, j, url)
		// A failed re-dispatch leaves redispatching set only if no
		// worker accepted; clear it so later proxies retry.
		co.mu.Lock()
		j.redispatching = false
		co.mu.Unlock()
	}
}

// jobStatus returns j's current status, proxying to the owning worker
// when the job is live. A dead owner triggers failover; a worker that
// forgot the job (it restarted) gets the job re-dispatched. Terminal
// statuses are frozen together with the report, after which no network
// is involved.
func (co *Coordinator) jobStatus(ctx context.Context, j *cjob) wire.JobStatus {
	co.mu.Lock()
	if j.terminal != nil {
		st := *j.terminal
		co.mu.Unlock()
		return st
	}
	if j.redispatching || j.workerURL == "" {
		co.mu.Unlock()
		return j.queuedStatus()
	}
	url, remoteID := j.workerURL, j.remoteID
	cli := co.byURL[url].cli
	co.mu.Unlock()

	st, err := cli.Status(ctx, remoteID)
	if err == nil {
		switch st.State {
		case "done", "failed", "canceled":
			co.finalize(ctx, j, cli, j.rewrite(*st))
			co.mu.Lock()
			defer co.mu.Unlock()
			if j.terminal != nil {
				return *j.terminal
			}
			return j.queuedStatus() // finalize hit a dead worker; re-running
		}
		return j.rewrite(*st)
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusNotFound {
			// The worker restarted and lost the job: re-dispatch it
			// (possibly right back to the same, now-empty worker).
			co.redispatch(ctx, j, "")
		}
		return j.queuedStatus()
	}
	co.noteWorkerDown(ctx, url)
	return j.queuedStatus()
}

// redispatch re-submits one job unless another proxy already is.
func (co *Coordinator) redispatch(ctx context.Context, j *cjob, exclude string) {
	co.mu.Lock()
	if j.isTerminal() || j.redispatching {
		co.mu.Unlock()
		return
	}
	j.redispatching = true
	co.mu.Unlock()
	co.dispatch(ctx, j, exclude)
	co.mu.Lock()
	j.redispatching = false
	co.mu.Unlock()
}

// finalize freezes a terminal job: the status plus the report bytes
// (or the error document for failed/canceled jobs) are fetched once
// and served from coordinator memory forever after. If the worker dies
// in the window between reaching a terminal state and the report
// fetch, the job fails over and re-runs — determinism guarantees the
// second run's bytes equal what the first would have served.
func (co *Coordinator) finalize(ctx context.Context, j *cjob, cli *client.Client, st wire.JobStatus) {
	co.mu.Lock()
	remoteID := j.remoteID
	co.mu.Unlock()
	body, status, err := cli.Report(ctx, remoteID)
	var apiErr *client.APIError
	switch {
	case err == nil:
		co.mu.Lock()
		j.terminal, j.report, j.reportStatus = &st, body, status
		co.mu.Unlock()
	case errors.As(err, &apiErr) && apiErr.Status != http.StatusNotFound:
		// Failed/canceled jobs report as error documents; freeze those.
		co.mu.Lock()
		j.terminal, j.reportErr = &st, apiErr
		co.mu.Unlock()
	case errors.Is(err, client.ErrNotFinished):
		// Terminal status but a not-finished report should not happen;
		// leave the job live and let the next poll retry.
	default:
		// Transport error or a 404 from a restarted worker: the
		// artifact is gone with the worker. Fail over and re-run.
		co.noteWorkerDown(ctx, j.workerURL)
	}
}

func (co *Coordinator) lookup(w http.ResponseWriter, r *http.Request) *cjob {
	co.mu.Lock()
	j := co.jobs[r.PathValue("id")]
	co.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "no such job")
	}
	return j
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := co.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, co.jobStatus(r.Context(), j))
}

func (co *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	j := co.lookup(w, r)
	if j == nil {
		return
	}
	st := co.jobStatus(r.Context(), j)
	co.mu.Lock()
	terminal, body, status, repErr := j.terminal != nil, j.report, j.reportStatus, j.reportErr
	co.mu.Unlock()
	switch {
	case !terminal:
		writeJSON(w, http.StatusAccepted, st)
	case repErr != nil:
		writeError(w, repErr.Status, wire.ErrorCode(repErr.Code), repErr.Message)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
	}
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := co.lookup(w, r)
	if j == nil {
		return
	}
	co.mu.Lock()
	if j.terminal != nil {
		st := *j.terminal
		co.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	url, remoteID := j.workerURL, j.remoteID
	var cli *client.Client
	if w2 := co.byURL[url]; w2 != nil {
		cli = w2.cli
	}
	co.mu.Unlock()

	if cli != nil && remoteID != "" {
		if st, err := cli.Cancel(r.Context(), remoteID); err == nil {
			writeJSON(w, http.StatusOK, j.rewrite(*st))
			return
		}
	}
	// The owner is unreachable (or the job is between workers): cancel
	// locally so failover does not resurrect a job nobody wants.
	exit := int(wire.ExitError)
	st := wire.JobStatus{
		V: wire.Version, ID: j.id, State: "canceled", ExitCode: &exit,
		Error: "job canceled", TraceID: j.tid.String(),
	}
	co.mu.Lock()
	if j.terminal == nil {
		j.terminal = &st
		j.reportErr = &client.APIError{
			Status: wire.ExitError.HTTPStatus(), Code: wire.CodeCanceled,
			Message: "job canceled",
		}
	}
	st = *j.terminal
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (co *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := co.lookup(w, r)
	if j == nil {
		return
	}
	co.mu.Lock()
	url, remoteID := j.workerURL, j.remoteID
	var cli *client.Client
	if w2 := co.byURL[url]; w2 != nil {
		cli = w2.cli
	}
	co.mu.Unlock()
	if cli == nil || remoteID == "" {
		co.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, wire.CodeNoWorker,
			"job is between workers; retry later")
		return
	}
	body, err := cli.Trace(r.Context(), remoteID, r.URL.Query().Get("omit_timing") != "")
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
			return
		}
		co.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, wire.CodeNoWorker,
			"worker unreachable; retry later")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("traceparent", j.echoTraceparent())
	w.Write(body)
}
