package dispatch

import (
	"reflect"
	"testing"

	"progconv/internal/fingerprint"
)

func TestRankIsDeterministic(t *testing.T) {
	urls := []string{"http://w1", "http://w2", "http://w3"}
	pair := fingerprint.Sum("test", "pair-a")
	first := Rank(pair, urls)
	for i := 0; i < 10; i++ {
		if got := Rank(pair, urls); !reflect.DeepEqual(got, first) {
			t.Fatalf("ranking changed between calls: %v vs %v", got, first)
		}
	}
	// Input order is irrelevant: the ranking is a pure function of the
	// (pair, URL) scores.
	shuffled := []string{"http://w3", "http://w1", "http://w2"}
	if got := Rank(pair, shuffled); !reflect.DeepEqual(got, first) {
		t.Fatalf("ranking depends on input order: %v vs %v", got, first)
	}
}

// Rendezvous hashing's defining property: removing one worker only
// reassigns the pairs that ranked it first — every other pair keeps
// its home worker.
func TestRankMinimalDisruption(t *testing.T) {
	urls := []string{"http://w1", "http://w2", "http://w3"}
	moved, kept := 0, 0
	for i := 0; i < 64; i++ {
		pair := fingerprint.Sum("test", "pair", itoa(i))
		before := Rank(pair, urls)
		after := Rank(pair, []string{"http://w1", "http://w2"})
		if before[0] == "http://w3" {
			moved++
			// Its new home must be its old second choice.
			if after[0] != before[1] {
				t.Fatalf("pair %d: evicted to %s, want next-ranked %s", i, after[0], before[1])
			}
		} else {
			kept++
			if after[0] != before[0] {
				t.Fatalf("pair %d moved from %s to %s though its worker survived",
					i, before[0], after[0])
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d of 64 pairs", moved, kept)
	}
}

func TestRankSpreadsPairs(t *testing.T) {
	urls := []string{"http://w1", "http://w2", "http://w3"}
	homes := map[string]int{}
	for i := 0; i < 64; i++ {
		pair := fingerprint.Sum("test", "pair", itoa(i))
		homes[Rank(pair, urls)[0]]++
	}
	if len(homes) != len(urls) {
		t.Fatalf("64 pairs landed on only %d of %d workers: %v", len(homes), len(urls), homes)
	}
}

// The PAD-field mutation manufactures genuinely distinct pairs.
func TestPadSpecsHaveDistinctPairs(t *testing.T) {
	seen := map[fingerprint.Hash]int{}
	for i := 0; i < 8; i++ {
		spec := fleetSpec(i)
		pair, err := PairFor(&spec)
		if err != nil {
			t.Fatalf("pad %d: %v", i, err)
		}
		if prev, dup := seen[pair]; dup {
			t.Fatalf("pads %d and %d share pair %s", prev, i, pair)
		}
		seen[pair] = i
	}
}
