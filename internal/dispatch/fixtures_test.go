package dispatch

// Shared fleet-test fixtures: COMPANY job specs (with a PAD-field
// mutation to manufacture distinct schema pairs, so affinity routing
// has something to spread), and an in-process fleet of httptest
// workers behind one coordinator.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"progconv/client"
	"progconv/internal/schema"
	"progconv/internal/serve"
	"progconv/internal/wire"
)

var fleetPrograms = []string{`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`, `
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`}

// fleetSpec is the canonical COMPANY job. pad > 0 inserts a PAD-<n>
// field into both schemas, producing a distinct (but still
// classifiable) schema pair per pad value — distinct pair
// fingerprints, hence distinct rendezvous rankings.
func fleetSpec(pad int) wire.JobSpec {
	spec := wire.JobSpec{
		V:         wire.Version,
		SourceDDL: padDDL(schema.CompanyV1().DDL(), pad),
		TargetDDL: padDDL(schema.CompanyV2().DDL(), pad),
		Options:   wire.JobOptions{Parallelism: 1},
	}
	for _, src := range fleetPrograms {
		spec.Programs = append(spec.Programs, wire.ProgramSpec{Source: src})
	}
	return spec
}

func padDDL(ddl string, pad int) string {
	if pad == 0 {
		return ddl
	}
	return strings.Replace(ddl, "AGE INT.",
		"AGE INT.\n    PAD-"+itoa(pad)+" CHAR.", 1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// slowFleetSpec delays every analyze stage, keeping jobs in flight
// long enough to kill their worker under them.
func slowFleetSpec(pad int, delay string) wire.JobSpec {
	spec := fleetSpec(pad)
	spec.Options.Inject = "delay=" + delay + "@*/analyze"
	return spec
}

// fleet is one coordinator over n in-process workers.
type fleet struct {
	co      *Coordinator
	ts      *httptest.Server // the coordinator's listener
	cli     *client.Client   // SDK client pointed at the coordinator
	workers []*httptest.Server
	servers []*serve.Server
}

// newFleet boots n workers and a coordinator with the background
// prober disabled — tests drive ProbeOnce for deterministic schedules.
func newFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{QueueDepth: 64, Runners: 4})
		ts := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.workers = append(f.workers, ts)
		cfg.Workers = append(cfg.Workers, ts.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.ProbeFailures == 0 {
		cfg.ProbeFailures = 1
	}
	f.co = New(cfg)
	f.ts = httptest.NewServer(f.co.Handler())
	f.cli = client.New(f.ts.URL)
	t.Cleanup(func() {
		f.ts.Close()
		f.co.Close()
		for _, ts := range f.workers {
			ts.Close()
		}
	})
	return f
}

// killWorker tears down worker i mid-flight and lets the coordinator
// notice through probes (ProbeFailures defaults to 1 in tests).
func (f *fleet) killWorker(t *testing.T, i int) {
	t.Helper()
	f.workers[i].CloseClientConnections()
	f.workers[i].Close()
	f.co.ProbeOnce(context.Background())
}

// ownerOf returns the index of the worker a pair's jobs route to.
func (f *fleet) ownerOf(t *testing.T, spec wire.JobSpec) int {
	t.Helper()
	pair, err := PairFor(&spec)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(f.workers))
	for i, ts := range f.workers {
		urls[i] = ts.URL
	}
	home := Rank(pair, urls)[0]
	for i, u := range urls {
		if u == home {
			return i
		}
	}
	t.Fatalf("home %s not in fleet", home)
	return -1
}

// directReport runs a spec on a fresh standalone daemon and returns
// the report bytes and HTTP status — the ground truth the coordinator
// path must reproduce byte for byte.
func directReport(t *testing.T, spec wire.JobSpec) ([]byte, int) {
	t.Helper()
	srv := serve.New(serve.Config{QueueDepth: 64, Runners: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.StartDrain()
	}()
	cli := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cli.Submit(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	body, status, err := cli.WaitReport(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	return body, status
}

func getJSON(t *testing.T, url string, doc any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if doc != nil {
		if err := json.Unmarshal(b, doc); err != nil {
			t.Fatalf("GET %s: %v: %s", url, err, b)
		}
	}
	return resp.StatusCode
}
