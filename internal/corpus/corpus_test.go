package corpus

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/core"
	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

func TestDatabaseScale(t *testing.T) {
	p := Profile{Seed: 7, Divisions: 3, DeptsPerDiv: 2, EmpsPerDept: 4}
	db := Database(p)
	if db.Count("DIV") != 3 || db.Count("EMP") != 24 {
		t.Errorf("DIV=%d EMP=%d", db.Count("DIV"), db.Count("EMP"))
	}
}

func TestDatabaseDeterministic(t *testing.T) {
	p := Profile{Seed: 7, Divisions: 2, DeptsPerDiv: 2, EmpsPerDept: 2}
	a, b := Database(p), Database(p)
	for _, id := range a.AllOf("EMP") {
		if !a.Data(id).Equal(b.Data(id)) {
			t.Fatal("same seed must give the same database")
		}
	}
}

func TestProgramsParseAndMix(t *testing.T) {
	p := PeriodProfile(42)
	members, err := Programs(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != p.Programs {
		t.Fatalf("got %d programs", len(members))
	}
	counts := map[Kind]int{}
	for _, m := range members {
		counts[m.Kind]++
		if m.Program == nil {
			t.Fatalf("%s did not parse", m.Kind)
		}
	}
	if counts[HazardRTV] != 8 || counts[HazardOrder] != 13 || counts[HazardViewUpdate] != 7 {
		t.Errorf("hazard counts = %v", counts)
	}
	if counts[CleanSweepPinned] == 0 || counts[CleanMaryland] == 0 {
		t.Errorf("clean classes missing: %v", counts)
	}
}

func TestProgramsDeterministic(t *testing.T) {
	a, _ := Programs(PeriodProfile(5))
	b, _ := Programs(PeriodProfile(5))
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatal("same seed must give the same corpus")
		}
	}
}

// TestPeriodProfileLandsInPaperBand is EXP-C1's core assertion: the
// default mix converts 65–70% of programs automatically under the strict
// policy, reproducing §2.1.1's reported success rate.
func TestPeriodProfileLandsInPaperBand(t *testing.T) {
	p := PeriodProfile(42)
	members, err := Programs(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
	sup := core.NewSupervisor()
	sup.Verify = false
	report, err := sup.Run(context.Background(), schema.CompanyV1(), nil, plan, nil, memberPrograms(members))
	if err != nil {
		t.Fatal(err)
	}
	auto, _, _ := report.Counts()
	rate := float64(auto) / float64(len(members))
	if rate < 0.65 || rate > 0.70 {
		t.Errorf("automatic conversion rate = %.0f%%, want the paper's 65-70%% band", rate*100)
	}
	if !strings.Contains(MixDescription(p), "programs=100") {
		t.Error("MixDescription")
	}
}

// memberPrograms extracts the parsed programs from an inventory.
func memberPrograms(members []Member) []*dbprog.Program {
	out := make([]*dbprog.Program, len(members))
	for i, m := range members {
		out[i] = m.Program
	}
	return out
}
