// Hierarchical (DL/I) corpus entries. Unlike the generated network
// inventories, the hierarchical workload is a fixed, named study — the
// Mehl & Wang §2.2 hierarchy inversion — so tests, cmd/exper, and the
// daemon end-to-end drills all convert the same bytes.
package corpus

import (
	"fmt"

	"progconv/internal/dbprog"
	"progconv/internal/hierstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

// The hierarchical program classes.
const (
	HierParentGet Kind = "hier-parent-get" // parent-targeted GU; restates child-first
	HierChildGet  Kind = "hier-child-get"  // child-targeted GU; ancestor SSA dropped
	HierGNP       Kind = "hier-gnp"        // GNP under inverted parentage (manual)
)

// HierEntry is a named hierarchical workload: a schema pair related by
// a catalogued reorder, a seed-database builder, and the DL/I program
// inventory written against the source order.
type HierEntry struct {
	Name string
	// Source and Target are the schema pair; ClassifyHier recovers the
	// reorder between them.
	Source, Target *schema.Hierarchy
	// Members is the inventory in conversion order.
	Members []Member
	// Seed builds a fresh population of the source hierarchy; callers
	// own the returned database.
	Seed func() *hierstore.DB
}

// Programs returns the entry's parsed inventory in order.
func (e *HierEntry) Programs() []*dbprog.Program {
	out := make([]*dbprog.Program, len(e.Members))
	for i := range e.Members {
		out[i] = e.Members[i].Program
	}
	return out
}

// IMSReorder is the Mehl & Wang study from §2.2 — "a change in the
// hierarchical order of an IMS structure": the DEPT→EMP hierarchy is
// inverted to EMP→DEPT. The inventory holds one program per command
// substitution outcome: a parent-targeted retrieval that restates
// child-first, a child-targeted retrieval whose ancestor SSA drops, and
// the study's tenured-employee sweep, whose GNP parentage the reorder
// inverts (manual review).
func IMSReorder() (*HierEntry, error) {
	src := schema.EmpDeptHierarchy()
	dst, err := xform.HierReorder{Promote: "EMP"}.ApplySchema(src)
	if err != nil {
		return nil, fmt.Errorf("corpus: ims-reorder target schema: %w", err)
	}
	e := &HierEntry{Name: "ims-reorder", Source: src, Target: dst, Seed: imsReorderSeed}
	for _, p := range []struct {
		kind Kind
		src  string
	}{
		{HierParentGet, `
PROGRAM DEPTMGR DIALECT DLI.
  GU DEPT(D# = 'D12').
  IF DB-STATUS = 'OK'
    PRINT 'MANAGER', MGR IN DEPT.
  ELSE
    PRINT 'NO SUCH DEPARTMENT'.
  END-IF.
END PROGRAM.
`},
		{HierChildGet, `
PROGRAM EMPBYID DIALECT DLI.
  GU DEPT, EMP(E# = 'E2').
  IF DB-STATUS = 'OK'
    PRINT 'EMPLOYEE', ENAME IN EMP, YEAR-OF-SERVICE IN EMP.
  ELSE
    PRINT 'NO SUCH EMPLOYEE'.
  END-IF.
END PROGRAM.
`},
		{HierGNP, `
PROGRAM TENURED DIALECT DLI.
  GU DEPT(D# = 'D2').
  PRINT 'DEPARTMENT', DNAME IN DEPT.
  PERFORM UNTIL DB-STATUS <> 'OK'
    GNP EMP(YEAR-OF-SERVICE > 10).
    IF DB-STATUS = 'OK'
      PRINT 'TENURED', ENAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`},
	} {
		prog, err := dbprog.Parse(p.src)
		if err != nil {
			return nil, fmt.Errorf("corpus: ims-reorder program (%s) does not parse: %w\n%s", p.kind, err, p.src)
		}
		e.Members = append(e.Members, Member{Kind: p.kind, Source: p.src, Program: prog})
	}
	return e, nil
}

// imsReorderSeed is the study's population: two departments, three
// employees, one of them past the ten-year tenure line.
func imsReorderSeed() *hierstore.DB {
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	for _, d := range []struct{ d, n, m string }{
		{"D2", "SALES", "SMITH"}, {"D12", "ACCOUNTING", "JONES"},
	} {
		s.ISRT(value.FromPairs("D#", d.d, "DNAME", d.n, "MGR", d.m), hierstore.U("DEPT"))
	}
	for _, e := range []struct {
		dept, e, n string
		yos        int
	}{
		{"D2", "E1", "BAKER", 3}, {"D2", "E2", "CLARK", 11}, {"D12", "E3", "ADAMS", 3},
	} {
		s.ISRT(value.FromPairs("E#", e.e, "ENAME", e.n, "AGE", 30, "YEAR-OF-SERVICE", e.yos),
			hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str(e.dept)), hierstore.U("EMP"))
	}
	return db
}
