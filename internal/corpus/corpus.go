// Package corpus generates seeded program inventories and database
// populations for the experiments. The paper's quantitative claims are
// about program inventories nobody can reproduce (1977 installations), so
// the generator makes the decisive variable — the fraction of programs
// exhibiting each §3.2 automation-defeating feature — an explicit,
// sweepable parameter (DESIGN.md substitution 3).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// Profile controls generation. Rates are fractions of the program count;
// whatever remains after the hazard classes becomes clean, convertible
// programs.
type Profile struct {
	Seed int64

	// Database scale.
	Divisions   int
	DeptsPerDiv int
	EmpsPerDept int

	// Program inventory.
	Programs int
	// Hazard rates (fractions in [0,1]; their sum must be ≤ 1).
	RateRunTimeVariability float64 // §3.2 run-time variability (blocking)
	RateOrderDependence    float64 // observable unpinned sweeps
	RateViewUpdate         float64 // stores through the split member
	RateStatusCode         float64 // status-code dependence (warning only)
	RateProcessFirst       float64 // FIND FIRST without sweep (warning only)
}

// PeriodProfile is the default mix calibrated so that the strict-policy
// automatic conversion rate lands in the paper's reported 65–70% band
// (§2.1.1: "a 65-70 percent success rate (sometimes higher)").
func PeriodProfile(seed int64) Profile {
	return Profile{
		Seed:      seed,
		Divisions: 4, DeptsPerDiv: 3, EmpsPerDept: 5,
		Programs:               100,
		RateRunTimeVariability: 0.08,
		RateOrderDependence:    0.13,
		RateViewUpdate:         0.07,
		RateStatusCode:         0.10,
		RateProcessFirst:       0.05,
	}
}

// Database builds a CompanyV1-shaped population at the profile's scale.
// Division names are DIV-00..; departments D-00..; employees E-00000...
func Database(p Profile) *netstore.DB {
	rng := rand.New(rand.NewSource(p.Seed))
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	emp := 0
	for d := 0; d < p.Divisions; d++ {
		divName := fmt.Sprintf("DIV-%02d", d)
		s.Store("DIV", value.FromPairs(
			"DIV-NAME", divName,
			"DIV-LOC", fmt.Sprintf("CITY-%02d", rng.Intn(10)),
		))
		for dep := 0; dep < p.DeptsPerDiv; dep++ {
			deptName := fmt.Sprintf("D-%02d", dep)
			for e := 0; e < p.EmpsPerDept; e++ {
				s.FindAny("DIV", value.FromPairs("DIV-NAME", divName))
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%05d", emp),
					"DEPT-NAME", deptName,
					"AGE", 20+rng.Intn(45),
				))
				emp++
			}
		}
	}
	return db
}

// Kind labels the generated program classes.
type Kind string

// The generated program classes.
const (
	CleanSweepPinned Kind = "clean-sweep-pinned" // USING the group field
	CleanAggregate   Kind = "clean-aggregate"    // silent accumulation
	CleanLocate      Kind = "clean-locate"       // FIND ANY + GET + PRINT
	CleanMaryland    Kind = "clean-maryland"     // sorted path query
	HazardOrder      Kind = "hazard-order"       // observable unpinned sweep
	HazardRTV        Kind = "hazard-rtv"         // input-steered DML
	HazardViewUpdate Kind = "hazard-view-update" // STORE through split member
	WarnStatusCode   Kind = "warn-status-code"   // specific DB-STATUS branch
	WarnProcessFirst Kind = "warn-process-first" // FIND FIRST, no sweep
)

// Member is one generated program with its provenance.
type Member struct {
	Kind    Kind
	Source  string
	Program *dbprog.Program
}

// Programs generates the inventory. Generation is deterministic in the
// seed; the hazard classes appear at exactly the profile's rates
// (rounded down), the remainder cycling through the clean classes.
func Programs(p Profile) ([]Member, error) {
	rng := rand.New(rand.NewSource(p.Seed + 1))
	n := p.Programs
	counts := map[Kind]int{
		HazardRTV:        int(p.RateRunTimeVariability * float64(n)),
		HazardOrder:      int(p.RateOrderDependence * float64(n)),
		HazardViewUpdate: int(p.RateViewUpdate * float64(n)),
		WarnStatusCode:   int(p.RateStatusCode * float64(n)),
		WarnProcessFirst: int(p.RateProcessFirst * float64(n)),
	}
	var kinds []Kind
	for _, k := range []Kind{HazardRTV, HazardOrder, HazardViewUpdate, WarnStatusCode, WarnProcessFirst} {
		for i := 0; i < counts[k]; i++ {
			kinds = append(kinds, k)
		}
	}
	clean := []Kind{CleanSweepPinned, CleanAggregate, CleanLocate, CleanMaryland}
	for i := 0; len(kinds) < n; i++ {
		kinds = append(kinds, clean[i%len(clean)])
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	var out []Member
	for i, k := range kinds {
		src := generate(k, i, p, rng)
		prog, err := dbprog.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("corpus: generated program %d (%s) does not parse: %w\n%s", i, k, err, src)
		}
		out = append(out, Member{Kind: k, Source: src, Program: prog})
	}
	return out, nil
}

func generate(k Kind, i int, p Profile, rng *rand.Rand) string {
	div := fmt.Sprintf("DIV-%02d", rng.Intn(max(1, p.Divisions)))
	dept := fmt.Sprintf("D-%02d", rng.Intn(max(1, p.DeptsPerDiv)))
	age := 25 + rng.Intn(35)
	name := fmt.Sprintf("P-%03d", i)
	switch k {
	case CleanSweepPinned:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  MOVE '%s' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE '%s' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP, AGE IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`, name, div, dept)
	case CleanAggregate:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  LET TOTAL = 0.
  LET N = 0.
  MOVE '%s' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET TOTAL = TOTAL + AGE IN EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  IF N > 0
    PRINT 'MEAN-AGE', TOTAL / N.
  ELSE
    PRINT 'EMPTY'.
  END-IF.
END PROGRAM.
`, name, div)
	case CleanLocate:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  MOVE 'E-%05d' TO EMP-NAME IN EMP.
  FIND ANY EMP USING EMP-NAME.
  IF DB-STATUS = 'OK'
    GET EMP.
    PRINT EMP-NAME IN EMP, DEPT-NAME IN EMP, DIV-NAME IN EMP.
  ELSE
    PRINT 'NO SUCH EMPLOYEE'.
  END-IF.
END PROGRAM.
`, name, rng.Intn(max(1, p.Divisions*p.DeptsPerDiv*p.EmpsPerDept)))
	case CleanMaryland:
		return fmt.Sprintf(`
PROGRAM %s DIALECT MARYLAND.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > %d))) ON (EMP-NAME) INTO OLDER.
  FOR EACH E IN OLDER
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`, name, age)
	case HazardOrder:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  MOVE '%s' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      WRITE 'ROSTER' EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`, name, div)
	case HazardRTV:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  ACCEPT MODE.
  MOVE '%s' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  IF MODE = 'PURGE'
    ERASE DIV.
    PRINT 'PURGED'.
  ELSE
    GET DIV.
    PRINT DIV-LOC IN DIV.
  END-IF.
END PROGRAM.
`, name, div)
	case HazardViewUpdate:
		return fmt.Sprintf(`
PROGRAM %s DIALECT MARYLAND.
  STORE EMP (EMP-NAME = 'NEW-%03d', DEPT-NAME = '%s', AGE = %d)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = '%s')).
  PRINT 'STORED'.
END PROGRAM.
`, name, i, dept, age, div)
	case WarnStatusCode:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  MOVE 'E-99999' TO EMP-NAME IN EMP.
  FIND ANY EMP USING EMP-NAME.
  IF DB-STATUS = 'NOT-FOUND'
    PRINT 'ABSENT'.
  ELSE
    PRINT 'PRESENT'.
  END-IF.
END PROGRAM.
`, name)
	case WarnProcessFirst:
		return fmt.Sprintf(`
PROGRAM %s DIALECT NETWORK.
  MOVE '%s' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
  IF DB-STATUS = 'OK'
    GET EMP.
    PRINT 'REPRESENTATIVE', EMP-NAME IN EMP.
  END-IF.
END PROGRAM.
`, name, div)
	}
	return ""
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MixDescription renders a profile's hazard mix for reports.
func MixDescription(p Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs=%d rtv=%.0f%% order=%.0f%% view-update=%.0f%% status=%.0f%% first=%.0f%%",
		p.Programs, p.RateRunTimeVariability*100, p.RateOrderDependence*100,
		p.RateViewUpdate*100, p.RateStatusCode*100, p.RateProcessFirst*100)
	return b.String()
}
