package analyzer

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/sequel"
)

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func companyDB() *schema.Network { return schema.CompanyV1() }

// sweepProgram is the canonical T2 shape.
const sweepProgram = `
PROGRAM SWEEP DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`

func TestLiftRetrieveLoop(t *testing.T) {
	abs := Analyze(context.Background(), parse(t, sweepProgram), companyDB())
	var rl *RetrieveLoop
	for _, n := range abs.Nodes {
		if x, ok := n.(RetrieveLoop); ok {
			rl = &x
		}
	}
	if rl == nil {
		t.Fatalf("template not lifted:\n%s", abs.Describe())
	}
	if rl.Owner != "DIV" || rl.Set != "DIV-EMP" || rl.Member != "EMP" {
		t.Errorf("lifted loop = %+v", rl)
	}
	if !rl.Observable {
		t.Error("PRINT body should be observable")
	}
	if len(rl.Body) != 1 {
		t.Errorf("body = %v", rl.Body)
	}
	if !strings.Contains(abs.Describe(), "SWEEP EMP WITHIN DIV-EMP FROM DIV") {
		t.Errorf("describe:\n%s", abs.Describe())
	}
}

func TestLiftWithUsingAndUnobservableBody(t *testing.T) {
	src := `
PROGRAM SUM DIALECT NETWORK.
  LET TOTAL = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET TOTAL = TOTAL + AGE IN EMP.
    END-IF.
  END-PERFORM.
  PRINT TOTAL.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	found := false
	for _, n := range abs.Nodes {
		if rl, ok := n.(RetrieveLoop); ok {
			found = true
			if rl.Observable {
				t.Error("accumulating body is not observable")
			}
			if len(rl.Using) != 1 || rl.Using[0] != "DEPT-NAME" {
				t.Errorf("using = %v", rl.Using)
			}
			// FIND ANY was consumed into the loop, preceded by MOVEs as hosts.
			if rl.Owner != "DIV" {
				t.Errorf("owner = %q", rl.Owner)
			}
		}
	}
	if !found {
		t.Fatalf("not lifted:\n%s", abs.Describe())
	}
}

func TestSystemSetSweepLift(t *testing.T) {
	src := `
PROGRAM ALLDIVS DIALECT NETWORK.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT DIV WITHIN ALL-DIV.
    IF DB-STATUS = 'OK'
      GET DIV.
      PRINT DIV-NAME IN DIV.
    END-IF.
  END-PERFORM.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	rl, ok := abs.Nodes[0].(RetrieveLoop)
	if !ok {
		t.Fatalf("not lifted:\n%s", abs.Describe())
	}
	if rl.Owner != "" || rl.Set != "ALL-DIV" {
		t.Errorf("system sweep = %+v", rl)
	}
}

func TestNonTemplateLoopStaysRaw(t *testing.T) {
	src := `
PROGRAM ODD DIALECT NETWORK.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    PRINT 'NO GUARD'.
  END-PERFORM.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if _, ok := abs.Nodes[0].(LoopNode); !ok {
		t.Fatalf("unguarded loop should stay a LoopNode:\n%s", abs.Describe())
	}
	// The DML inside is raw.
	ln := abs.Nodes[0].(LoopNode)
	if _, ok := ln.Body[0].(RawDML); !ok {
		t.Error("FIND NEXT without guard should be RawDML")
	}
}

func TestHazardRunTimeVariability(t *testing.T) {
	src := `
PROGRAM RTV DIALECT NETWORK.
  ACCEPT MODE.
  IF MODE = 'DELETE'
    MOVE 'X' TO EMP-NAME IN EMP.
    FIND ANY EMP USING EMP-NAME.
    ERASE EMP.
  ELSE
    PRINT 'READ ONLY'.
  END-IF.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if !hasIssue(abs, RunTimeVariability) {
		t.Errorf("issues = %v", abs.Issues)
	}
	if !abs.HasBlockingIssue() {
		t.Error("run-time variability blocks automation")
	}
}

func TestHazardViaLetChaining(t *testing.T) {
	src := `
PROGRAM RTV2 DIALECT NETWORK.
  ACCEPT RAW.
  LET MODE = RAW + ''.
  IF MODE = 'W'
    STORE DIV.
  END-IF.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if !hasIssue(abs, RunTimeVariability) {
		t.Errorf("LET-chained input var not tracked: %v", abs.Issues)
	}
}

func TestHazardProcessFirst(t *testing.T) {
	src := `
PROGRAM PF DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP-NAME IN EMP.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if !hasIssue(abs, ProcessFirst) {
		t.Errorf("issues = %v", abs.Issues)
	}
	if abs.HasBlockingIssue() {
		t.Error("process-first is a warning, not a blocker")
	}
}

func TestNoProcessFirstWhenSweptAfter(t *testing.T) {
	src := `
PROGRAM OKFIRST DIALECT NETWORK.
  FIND ANY DIV.
  FIND FIRST EMP WITHIN DIV-EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
  END-PERFORM.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if hasIssue(abs, ProcessFirst) {
		t.Errorf("FIRST followed by NEXT sweep is fine: %v", abs.Issues)
	}
}

func TestHazardStatusCodeDependence(t *testing.T) {
	src := `
PROGRAM SCD DIALECT NETWORK.
  FIND ANY EMP.
  IF DB-STATUS = 'NOT-FOUND'
    PRINT 'MISSING'.
  END-IF.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	if !hasIssue(abs, StatusCodeDependence) {
		t.Errorf("issues = %v", abs.Issues)
	}
	// Generic OK tests are not flagged.
	abs2 := Analyze(context.Background(), parse(t, sweepProgram), companyDB())
	if hasIssue(abs2, StatusCodeDependence) {
		t.Errorf("OK checks flagged: %v", abs2.Issues)
	}
}

func hasIssue(a *Abstract, k IssueKind) bool {
	for _, i := range a.Issues {
		if i.Kind == k {
			return true
		}
	}
	return false
}

func TestIssueStrings(t *testing.T) {
	for k, w := range map[IssueKind]string{
		RunTimeVariability: "run-time-variability", OrderDependence: "order-dependence",
		ProcessFirst: "process-first", StatusCodeDependence: "status-code-dependence",
		UnmatchedTemplate: "unmatched-template", IssueKind(99): "?",
	} {
		if k.String() != w {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	i := Issue{Kind: ProcessFirst, Msg: "m"}
	if i.String() != "process-first: m" {
		t.Error("Issue.String")
	}
}

// TestDeriveSmithQuery reproduces EXP-S4.1a: the paper's access-pattern
// sequence derived from the equivalent nested query.
func TestDeriveSmithQuery(t *testing.T) {
	q, err := sequel.ParseQuery(`
SELECT ENAME FROM EMP WHERE E# IN
  (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN
    (SELECT D# FROM DEPT WHERE MGR = 'SMITH'))`)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DeriveSequence(context.Background(), q, semantic.PersonnelSchema())
	if err != nil {
		t.Fatal(err)
	}
	got := seq.String()
	want := "ACCESS DEPT via DEPT [MGR]\n" +
		"ACCESS EMP-DEPT via DEPT [YEAR-OF-SERVICE]\n" +
		"ACCESS EMP via EMP-DEPT\n" +
		"RETRIEVE\n"
	if got != want {
		t.Errorf("derived:\n%s\nwant:\n%s", got, want)
	}
}

func TestDeriveSimpleEntityQuery(t *testing.T) {
	q, _ := sequel.ParseQuery("SELECT ENAME FROM EMP WHERE AGE > 30")
	seq, err := DeriveSequence(context.Background(), q, semantic.PersonnelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Steps) != 1 || seq.Steps[0].Kind != semantic.ViaSelf {
		t.Errorf("derived = %s", seq)
	}
	if len(seq.Steps[0].CondFields) != 1 || seq.Steps[0].CondFields[0] != "AGE" {
		t.Errorf("cond fields = %v", seq.Steps[0].CondFields)
	}
}

func TestDeriveErrors(t *testing.T) {
	sem := semantic.PersonnelSchema()
	cases := []string{
		"SELECT X FROM NOWHERE",
		"SELECT E# FROM EMP-DEPT WHERE D# = 'D1'", // enters via an association
		"SELECT ENAME FROM EMP WHERE E# IN (SELECT E# FROM EMP-DEPT) AND E# IN (SELECT E# FROM EMP-DEPT)",
	}
	for _, src := range cases {
		q, err := sequel.ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, err := DeriveSequence(context.Background(), q, sem); err == nil {
			t.Errorf("%s should not derive", src)
		}
	}
	// Entity reached via a non-association (nested entity query).
	q, _ := sequel.ParseQuery("SELECT ENAME FROM EMP WHERE E# IN (SELECT D# FROM DEPT)")
	if _, err := DeriveSequence(context.Background(), q, sem); err == nil {
		t.Error("entity-via-entity should not derive")
	}
}

func TestDeriveDisjunctionAsCondition(t *testing.T) {
	q, _ := sequel.ParseQuery("SELECT ENAME FROM EMP WHERE AGE > 30 OR AGE < 20")
	seq, err := DeriveSequence(context.Background(), q, semantic.PersonnelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Steps[0].CondFields) != 2 {
		t.Errorf("cond fields = %v", seq.Steps[0].CondFields)
	}
}

func TestAnalyzeMarylandAndSequelPassThrough(t *testing.T) {
	src := `
PROGRAM MD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`
	abs := Analyze(context.Background(), parse(t, src), companyDB())
	raw := 0
	for _, n := range abs.Nodes {
		if _, ok := n.(RawDML); ok {
			raw++
		}
	}
	if raw != 2 {
		t.Errorf("Maryland DML nodes = %d\n%s", raw, abs.Describe())
	}
}
