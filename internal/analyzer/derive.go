package analyzer

import (
	"context"
	"fmt"

	"progconv/internal/semantic"
	"progconv/internal/sequel"
)

// DeriveSequence produces the §4.1 access-pattern sequence for a nested
// SEQUEL query block against a semantic schema: the paper's worked
// derivation turns
//
//	SELECT ENAME FROM EMP WHERE E# IN
//	  (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN
//	    (SELECT D# FROM DEPT WHERE MGR = 'SMITH'))
//
// into
//
//	ACCESS DEPT via DEPT
//	ACCESS EMP-DEPT via DEPT
//	ACCESS EMP via EMP-DEPT
//	RETRIEVE
//
// Each nested block must range over an entity or association of the
// schema; the chain of IN sub-selects is the traversal. Derivation
// respects ctx cancellation, returning ctx.Err() wrapped.
func DeriveSequence(ctx context.Context, q *sequel.Select, sem *semantic.Schema) (*semantic.Sequence, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("analyzer: derive: %w", err)
	}
	steps, err := deriveSteps(q, sem)
	if err != nil {
		return nil, err
	}
	seq := &semantic.Sequence{Steps: steps, Op: semantic.Retrieve}
	if err := seq.Validate(sem); err != nil {
		return nil, fmt.Errorf("analyzer: derived sequence invalid: %w", err)
	}
	return seq, nil
}

func deriveSteps(q *sequel.Select, sem *semantic.Schema) ([]semantic.Step, error) {
	sub, direct, err := splitWhere(q.Where)
	if err != nil {
		return nil, err
	}
	var steps []semantic.Step
	var via string
	if sub != nil {
		inner, err := deriveSteps(sub.Sub, sem)
		if err != nil {
			return nil, err
		}
		steps = inner
		via = sub.Sub.From
	}

	isEntity := sem.Entity(q.From) != nil
	isAssoc := sem.Association(q.From) != nil
	switch {
	case !isEntity && !isAssoc:
		return nil, fmt.Errorf("analyzer: %s is neither an entity nor an association of the semantic schema", q.From)
	case via == "":
		if !isEntity {
			return nil, fmt.Errorf("analyzer: traversal must enter through an entity, not association %s", q.From)
		}
		steps = append(steps, semantic.Step{
			Kind: semantic.ViaSelf, Target: q.From, Via: q.From, CondFields: direct,
		})
	case isAssoc:
		steps = append(steps, semantic.Step{
			Kind: semantic.AssocViaSide, Target: q.From, Via: via, CondFields: direct,
		})
	default:
		if sem.Association(via) == nil {
			return nil, fmt.Errorf("analyzer: entity %s reached via %s, which is not an association", q.From, via)
		}
		steps = append(steps, semantic.Step{
			Kind: semantic.ViaAssoc, Target: q.From, Via: via, CondFields: direct,
		})
	}
	return steps, nil
}

// splitWhere separates the single IN sub-select link from the direct
// conditions of one block. More than one IN link is outside the
// derivable subset.
func splitWhere(c sequel.Cond) (*sequel.In, []string, error) {
	if c == nil {
		return nil, nil, nil
	}
	switch x := c.(type) {
	case sequel.In:
		return &x, nil, nil
	case sequel.Cmp:
		return nil, []string{x.Col}, nil
	case sequel.And:
		lIn, lFields, err := splitWhere(x.L)
		if err != nil {
			return nil, nil, err
		}
		rIn, rFields, err := splitWhere(x.R)
		if err != nil {
			return nil, nil, err
		}
		if lIn != nil && rIn != nil {
			return nil, nil, fmt.Errorf("analyzer: more than one IN link in a block")
		}
		in := lIn
		if rIn != nil {
			in = rIn
		}
		return in, append(lFields, rFields...), nil
	case sequel.Or:
		// Disjunctions do not link blocks; their fields are conditions.
		return nil, condFields(x), nil
	case sequel.Not:
		return nil, condFields(x), nil
	}
	return nil, nil, fmt.Errorf("analyzer: unsupported condition %T", c)
}

func condFields(c sequel.Cond) []string {
	switch x := c.(type) {
	case sequel.Cmp:
		return []string{x.Col}
	case sequel.And:
		return append(condFields(x.L), condFields(x.R)...)
	case sequel.Or:
		return append(condFields(x.L), condFields(x.R)...)
	case sequel.Not:
		return condFields(x.C)
	}
	return nil
}
