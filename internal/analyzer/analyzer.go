// Package analyzer is the Program Analyzer of Figure 4.1: it "uses the
// source database description and matches candidate language templates
// against the source application program to produce a representation of
// the database operations and data access patterns made by the program",
// and it detects the §3.2 features that defeat automatic conversion —
// run-time variability, order dependence, "process first" against
// "process all", and status-code dependence.
package analyzer

import (
	"context"
	"fmt"
	"strings"

	"progconv/internal/dbprog"
	"progconv/internal/obs"
	"progconv/internal/schema"
)

// IssueKind classifies an analysis finding.
type IssueKind uint8

// The finding kinds; the first group are the §3.2 hazards.
const (
	// RunTimeVariability: terminal input steers which DML statements
	// execute ("what appeared to be a read at compile time might become
	// an update").
	RunTimeVariability IssueKind = iota
	// OrderDependence: a retrieval loop's body produces observable output
	// per record, so its answer depends on member enumeration order.
	OrderDependence
	// ProcessFirst: a FIND FIRST with no enclosing sweep — the programmer
	// may have intended "process all" (§3.2's example).
	ProcessFirst
	// StatusCodeDependence: the program branches on a specific non-OK
	// DB-STATUS code, which restructurings can change.
	StatusCodeDependence
	// UnmatchedTemplate: DML that fits no lifting template; convertible
	// only if the restructuring leaves it untouched.
	UnmatchedTemplate
)

func (k IssueKind) String() string {
	switch k {
	case RunTimeVariability:
		return "run-time-variability"
	case OrderDependence:
		return "order-dependence"
	case ProcessFirst:
		return "process-first"
	case StatusCodeDependence:
		return "status-code-dependence"
	case UnmatchedTemplate:
		return "unmatched-template"
	}
	return "?"
}

// Issue is one analysis finding.
type Issue struct {
	Kind IssueKind
	Msg  string
}

func (i Issue) String() string { return i.Kind.String() + ": " + i.Msg }

// Node is one element of the abstract program.
type Node interface{ node() }

// Host wraps a non-DML statement with no nested blocks.
type Host struct{ Stmt dbprog.Stmt }

// IfNode preserves a conditional's structure for nested analysis.
type IfNode struct {
	Cond       dbprog.Expr
	Then, Else []Node
}

// LoopNode preserves an unrecognized PERFORM UNTIL.
type LoopNode struct {
	Cond dbprog.Expr
	Body []Node
}

// RetrieveLoop is the lifted template T2 of the Nations & Su catalogue:
// position on an owner, then sweep the members of one set, executing a
// body per retrieved record.
//
//	FIND ANY <owner> USING <ownerUsing>.        (absent for SYSTEM sets)
//	PERFORM UNTIL DB-STATUS <> 'OK'
//	  FIND NEXT <member> WITHIN <set> [USING <using>].
//	  IF DB-STATUS = 'OK'  GET <member>.  <body>  END-IF.
//	END-PERFORM.
type RetrieveLoop struct {
	Owner      string // "" when the set is SYSTEM-owned
	OwnerUsing []string
	Set        string
	Member     string
	Using      []string
	Body       []Node
	// Observable reports whether the body emits per-record output, making
	// the loop order-sensitive.
	Observable bool
}

// RawDML wraps a DML statement that no template matched.
type RawDML struct{ Stmt dbprog.Stmt }

func (Host) node()         {}
func (IfNode) node()       {}
func (LoopNode) node()     {}
func (RetrieveLoop) node() {}
func (RawDML) node()       {}

// Abstract is the analyzer's output: the program's control skeleton with
// database operations lifted to access-pattern form where templates
// matched, plus the findings.
type Abstract struct {
	Prog   *dbprog.Program
	Nodes  []Node
	Issues []Issue
}

// HasBlockingIssue reports whether any finding rules out fully automatic
// conversion regardless of the transformation (run-time variability is
// the only unconditional blocker; the others depend on what the plan
// touches).
func (a *Abstract) HasBlockingIssue() bool {
	for _, i := range a.Issues {
		if i.Kind == RunTimeVariability {
			return true
		}
	}
	return false
}

// Analyze lifts a program. The network schema is consulted to decide
// whether a swept set is SYSTEM-owned; it may be nil for non-network
// dialects.
//
// Analyze honors ctx only as a fast-path bailout: when ctx is already
// done it returns an empty Abstract immediately. Callers running under
// a cancelable context must check ctx.Err() before trusting the result
// (the Conversion Supervisor does).
func Analyze(ctx context.Context, p *dbprog.Program, net *schema.Network) *Abstract {
	if ctx.Err() != nil {
		return &Abstract{Prog: p}
	}
	a := &analysis{prog: p, net: net, em: obs.EmitterFrom(ctx)}
	a.inputVars = collectInputVars(p.Stmts)
	abs := &Abstract{Prog: p}
	abs.Nodes = a.lift(p.Stmts)
	a.detectHazards(p.Stmts, abs)
	abs.Issues = a.issues
	return abs
}

type analysis struct {
	prog      *dbprog.Program
	net       *schema.Network
	inputVars map[string]bool
	issues    []Issue
	em        *obs.Emitter // event log (nil when the run is unobserved)
}

func (a *analysis) issue(k IssueKind, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	a.issues = append(a.issues, Issue{Kind: k, Msg: msg})
	a.em.Hazard(a.prog.Name, k.String(), msg)
}

// collectInputVars finds variables carrying terminal or file input,
// transitively through LET.
func collectInputVars(stmts []dbprog.Stmt) map[string]bool {
	vars := map[string]bool{}
	// Two passes propagate one level of LET chaining, enough for the
	// corpus constructs.
	for pass := 0; pass < 2; pass++ {
		var walk func([]dbprog.Stmt)
		walk = func(ss []dbprog.Stmt) {
			for _, st := range ss {
				switch s := st.(type) {
				case dbprog.Accept:
					vars[s.Var] = true
				case dbprog.ReadFile:
					vars[s.Var] = true
				case dbprog.Let:
					if exprUsesVars(s.E, vars) {
						vars[s.Var] = true
					}
				case dbprog.If:
					walk(s.Then)
					walk(s.Else)
				case dbprog.PerformUntil:
					walk(s.Body)
				case dbprog.ForEach:
					walk(s.Body)
				case dbprog.SqlForEach:
					walk(s.Body)
				}
			}
		}
		walk(stmts)
	}
	return vars
}

func exprUsesVars(e dbprog.Expr, vars map[string]bool) bool {
	switch x := e.(type) {
	case dbprog.Var:
		return vars[x.Name]
	case dbprog.Bin:
		return exprUsesVars(x.L, vars) || exprUsesVars(x.R, vars)
	case dbprog.Un:
		return exprUsesVars(x.E, vars)
	}
	return false
}

// lift walks a statement block, recognizing templates.
func (a *analysis) lift(stmts []dbprog.Stmt) []Node {
	var out []Node
	for i := 0; i < len(stmts); i++ {
		if nodes, consumed, ok := a.matchRetrieveLoop(stmts[i:]); ok {
			out = append(out, nodes...)
			i += consumed - 1
			continue
		}
		switch s := stmts[i].(type) {
		case dbprog.If:
			out = append(out, IfNode{Cond: s.Cond, Then: a.lift(s.Then), Else: a.lift(s.Else)})
		case dbprog.PerformUntil:
			out = append(out, LoopNode{Cond: s.Cond, Body: a.lift(s.Body)})
		default:
			if isDML(stmts[i]) {
				out = append(out, RawDML{Stmt: stmts[i]})
			} else {
				out = append(out, Host{Stmt: stmts[i]})
			}
		}
	}
	return out
}

// matchRetrieveLoop recognizes template T2: optionally
// FIND ANY <owner> USING ..., then buffer-setup MOVEs, then the canonical
// member sweep. The returned nodes carry any interleaved MOVEs as host
// nodes ahead of the lifted loop.
func (a *analysis) matchRetrieveLoop(stmts []dbprog.Stmt) ([]Node, int, bool) {
	var rl RetrieveLoop
	idx := 0
	var prefix []Node
	if fa, ok := stmts[0].(dbprog.FindAny); ok && len(stmts) > 1 {
		rl.Owner = fa.Record
		rl.OwnerUsing = fa.Using
		idx = 1
		// Buffer-setup MOVEs between the positioning FIND and the sweep.
		for idx < len(stmts) {
			mv, ok := stmts[idx].(dbprog.Move)
			if !ok {
				break
			}
			prefix = append(prefix, Host{Stmt: mv})
			idx++
		}
	}
	if idx >= len(stmts) {
		return nil, 0, false
	}
	loop, ok := stmts[idx].(dbprog.PerformUntil)
	if !ok || !isStatusNotOK(loop.Cond) || len(loop.Body) != 2 {
		return nil, 0, false
	}
	fis, ok := loop.Body[0].(dbprog.FindInSet)
	if !ok || fis.Dir != "NEXT" {
		return nil, 0, false
	}
	guard, ok := loop.Body[1].(dbprog.If)
	if !ok || !isStatusOK(guard.Cond) || len(guard.Else) != 0 || len(guard.Then) == 0 {
		return nil, 0, false
	}
	get, ok := guard.Then[0].(dbprog.GetRec)
	if !ok || get.Record != fis.Record {
		return nil, 0, false
	}
	// The set's ownership decides whether the FIND ANY prefix belongs to
	// this loop: a FIND ANY before a SYSTEM-set sweep is unrelated.
	if a.net != nil {
		if st := a.net.Set(fis.Set); st != nil && st.IsSystem() && idx > 0 {
			return nil, 0, false
		}
	}
	rl.Set = fis.Set
	rl.Member = fis.Record
	rl.Using = fis.Using
	rl.Body = a.lift(guard.Then[1:])
	rl.Observable = observable(guard.Then[1:])
	return append(prefix, rl), idx + 1, true
}

// isStatusNotOK matches DB-STATUS <> 'OK'.
func isStatusNotOK(e dbprog.Expr) bool {
	b, ok := e.(dbprog.Bin)
	if !ok || b.Op != "<>" {
		return false
	}
	return isStatusRef(b.L) && isOKLit(b.R)
}

// isStatusOK matches DB-STATUS = 'OK'.
func isStatusOK(e dbprog.Expr) bool {
	b, ok := e.(dbprog.Bin)
	if !ok || b.Op != "=" {
		return false
	}
	return isStatusRef(b.L) && isOKLit(b.R)
}

func isStatusRef(e dbprog.Expr) bool {
	_, ok := e.(dbprog.StatusRef)
	return ok
}

func isOKLit(e dbprog.Expr) bool {
	l, ok := e.(dbprog.Lit)
	return ok && l.V.String() == "OK"
}

// observable reports whether a block writes to the terminal or a file.
func observable(stmts []dbprog.Stmt) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case dbprog.Print, dbprog.WriteFile:
			return true
		case dbprog.If:
			if observable(s.Then) || observable(s.Else) {
				return true
			}
		case dbprog.PerformUntil:
			if observable(s.Body) {
				return true
			}
		case dbprog.ForEach:
			if observable(s.Body) {
				return true
			}
		case dbprog.SqlForEach:
			if observable(s.Body) {
				return true
			}
		}
	}
	return false
}

// isDML reports whether the statement touches the database.
func isDML(st dbprog.Stmt) bool {
	switch st.(type) {
	case dbprog.Move, dbprog.FindAny, dbprog.FindDup, dbprog.FindInSet,
		dbprog.FindOwner, dbprog.GetRec, dbprog.StoreRec, dbprog.ModifyRec,
		dbprog.EraseRec, dbprog.ConnectRec, dbprog.DisconnectRec,
		dbprog.MFind, dbprog.ForEach, dbprog.MDelete, dbprog.MModify, dbprog.MStore,
		dbprog.SqlForEach, dbprog.SqlExec,
		dbprog.DLIGet, dbprog.DLIInsert, dbprog.DLIDelete, dbprog.DLIRepl:
		return true
	}
	return false
}

// containsDML reports whether a block contains any DML statement.
func containsDML(stmts []dbprog.Stmt) bool {
	for _, st := range stmts {
		if isDML(st) {
			return true
		}
		switch s := st.(type) {
		case dbprog.If:
			if containsDML(s.Then) || containsDML(s.Else) {
				return true
			}
		case dbprog.PerformUntil:
			if containsDML(s.Body) {
				return true
			}
		}
	}
	return false
}

// detectHazards runs the §3.2 detectors over the raw statement tree.
func (a *analysis) detectHazards(stmts []dbprog.Stmt, abs *Abstract) {
	var walk func(ss []dbprog.Stmt, inSweep map[string]bool)
	walk = func(ss []dbprog.Stmt, inSweep map[string]bool) {
		for i, st := range ss {
			switch s := st.(type) {
			case dbprog.If:
				// Run-time variability: input-steered choice between DML.
				if exprUsesVars(s.Cond, a.inputVars) && (containsDML(s.Then) || containsDML(s.Else)) {
					a.issue(RunTimeVariability,
						"DML executed under a condition on terminal/file input (%s)", dbprog.FormatExpr(s.Cond))
				}
				// Status-code dependence: branching on a specific failure code.
				if code, ok := specificStatusCode(s.Cond); ok {
					a.issue(StatusCodeDependence, "branch on DB-STATUS code %q", code)
				}
				walk(s.Then, inSweep)
				walk(s.Else, inSweep)
			case dbprog.PerformUntil:
				sweeps := map[string]bool{}
				for k := range inSweep {
					sweeps[k] = true
				}
				for _, inner := range s.Body {
					if fis, ok := inner.(dbprog.FindInSet); ok && fis.Dir == "NEXT" {
						sweeps[fis.Set] = true
					}
				}
				walk(s.Body, sweeps)
			case dbprog.FindInSet:
				if s.Dir == "FIRST" && !inSweep[s.Set] && !followedByNext(ss[i+1:], s.Set) {
					a.issue(ProcessFirst,
						"FIND FIRST %s WITHIN %s with no subsequent sweep: \"process all\" may have been intended",
						s.Record, s.Set)
				}
			case dbprog.ForEach:
				walk(s.Body, inSweep)
			case dbprog.SqlForEach:
				walk(s.Body, inSweep)
			}
		}
	}
	walk(stmts, map[string]bool{})
}

// specificStatusCode matches comparisons of DB-STATUS against a literal
// other than 'OK' — the program knows about particular failure codes.
func specificStatusCode(e dbprog.Expr) (string, bool) {
	b, ok := e.(dbprog.Bin)
	if !ok {
		return "", false
	}
	if b.Op != "=" && b.Op != "<>" {
		return "", false
	}
	if !isStatusRef(b.L) {
		return "", false
	}
	l, ok := b.R.(dbprog.Lit)
	if !ok {
		return "", false
	}
	if code := l.V.String(); code != "OK" {
		return code, true
	}
	return "", false
}

func followedByNext(rest []dbprog.Stmt, set string) bool {
	for _, st := range rest {
		switch s := st.(type) {
		case dbprog.FindInSet:
			if s.Set == set && (s.Dir == "NEXT" || s.Dir == "PRIOR") {
				return true
			}
		case dbprog.PerformUntil:
			if followedByNext(s.Body, set) {
				return true
			}
		case dbprog.If:
			if followedByNext(s.Then, set) || followedByNext(s.Else, set) {
				return true
			}
		}
	}
	return false
}

// Describe renders the abstract program for conversion reports: lifted
// loops in access-path notation, everything else by statement class.
func (a *Abstract) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s (%s)\n", a.Prog.Name, a.Prog.Dialect)
	describeNodes(&b, a.Nodes, 1)
	for _, i := range a.Issues {
		fmt.Fprintf(&b, "! %s\n", i)
	}
	return b.String()
}

func describeNodes(b *strings.Builder, nodes []Node, depth int) {
	pad := strings.Repeat("  ", depth)
	for _, n := range nodes {
		switch x := n.(type) {
		case RetrieveLoop:
			owner := x.Owner
			if owner == "" {
				owner = "(current)"
			}
			fmt.Fprintf(b, "%sSWEEP %s WITHIN %s FROM %s", pad, x.Member, x.Set, owner)
			if len(x.Using) > 0 {
				fmt.Fprintf(b, " USING %s", strings.Join(x.Using, ", "))
			}
			if x.Observable {
				b.WriteString(" [observable]")
			}
			b.WriteString("\n")
			describeNodes(b, x.Body, depth+1)
		case IfNode:
			fmt.Fprintf(b, "%sIF %s\n", pad, dbprog.FormatExpr(x.Cond))
			describeNodes(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%sELSE\n", pad)
				describeNodes(b, x.Else, depth+1)
			}
		case LoopNode:
			fmt.Fprintf(b, "%sLOOP UNTIL %s\n", pad, dbprog.FormatExpr(x.Cond))
			describeNodes(b, x.Body, depth+1)
		case RawDML:
			fmt.Fprintf(b, "%sDML %T\n", pad, x.Stmt)
		case Host:
			fmt.Fprintf(b, "%shost %T\n", pad, x.Stmt)
		}
	}
}
