package fault

import (
	"context"
	"testing"
	"time"
)

func TestAtExplicitRules(t *testing.T) {
	in := New(0,
		Rule{Kind: Panic, Prog: "P-007", Stage: "convert"},
		Rule{Kind: Transient, Prog: "P-01?", Stage: "analyze", Count: 2},
		Rule{Kind: Delay, Prog: "*", Stage: "verify", Delay: time.Second},
	)
	if f := in.At("P-007", "convert", 0); f == nil || f.Kind != Panic {
		t.Errorf("P-007/convert = %+v, want panic", f)
	}
	if f := in.At("P-007", "analyze", 0); f != nil {
		t.Errorf("P-007/analyze fired: %+v", f)
	}
	if f := in.At("P-007", "convert", 1); f != nil {
		t.Errorf("count 1 rule fired on attempt 1: %+v", f)
	}
	for attempt, want := range []bool{true, true, false} {
		got := in.At("P-013", "analyze", attempt) != nil
		if got != want {
			t.Errorf("P-013/analyze attempt %d fired = %v, want %v", attempt, got, want)
		}
	}
	if f := in.At("ANYTHING", "verify", 0); f == nil || f.Kind != Delay || f.Delay != time.Second {
		t.Errorf("*/verify = %+v, want 1s delay", f)
	}
}

// TestAtDeterministic: the decision is a pure function of the site — the
// property that keeps chaos reports byte-identical across parallelism.
func TestAtDeterministic(t *testing.T) {
	in := New(7, Rule{Kind: Transient, Prog: "*", Stage: "analyze", Rate: 0.3})
	fired := map[string]bool{}
	for _, prog := range []string{"P-000", "P-001", "P-002", "P-003", "P-004"} {
		fired[prog] = in.At(prog, "analyze", 0) != nil
	}
	for round := 0; round < 3; round++ {
		for prog, want := range fired {
			if got := in.At(prog, "analyze", 0) != nil; got != want {
				t.Fatalf("round %d: %s fired = %v, want %v (stateful injector)", round, prog, got, want)
			}
		}
	}
	// A different seed moves the gate for at least one site (sanity that
	// the seed participates at all; 5 sites at rate 0.3 collide rarely).
	other := New(8, Rule{Kind: Transient, Prog: "*", Stage: "analyze", Rate: 0.3})
	same := true
	for prog, want := range fired {
		if (other.At(prog, "analyze", 0) != nil) != want {
			same = false
		}
	}
	_ = same // seeds may coincide; the determinism assertions above are the test
}

func TestRateGateHitsFraction(t *testing.T) {
	in := New(3, Rule{Kind: Transient, Rate: 0.25})
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if in.At(progName(i), "analyze", 0) != nil {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.18 || frac > 0.32 {
		t.Errorf("rate 0.25 fired %.3f of sites", frac)
	}
}

func progName(i int) string {
	const digits = "0123456789"
	return "P-" + string([]byte{digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10]})
}

func TestParse(t *testing.T) {
	in, err := Parse("seed=7,panic@P-007/convert,delay=250ms@P-01*/analyze,transient@*/generate:2~0.5")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 7 || len(in.rules) != 3 {
		t.Fatalf("parsed %+v", in)
	}
	if r := in.rules[1]; r.Kind != Delay || r.Delay != 250*time.Millisecond || r.Prog != "P-01*" {
		t.Errorf("delay rule = %+v", r)
	}
	if r := in.rules[2]; r.Kind != Transient || r.Count != 2 || r.Rate != 0.5 {
		t.Errorf("transient rule = %+v", r)
	}
	for _, bad := range []string{
		"", "panic", "panic@P-007", "sparkle@a/b", "delay@a/b",
		"transient=5ms@a/b", "panic@a/b:0", "transient@a/b~2", "panic@[/analyze",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("empty context yielded an injector")
	}
	if With(ctx, nil) != ctx {
		t.Error("nil injector must not grow the context")
	}
	in := New(0, Rule{Kind: Panic})
	if From(With(ctx, in)) != in {
		t.Error("injector lost in transit")
	}
	if (*Injector)(nil).At("P", "analyze", 0) != nil {
		t.Error("nil injector fired")
	}
}
