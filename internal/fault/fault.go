// Package fault is a deterministic, seeded fault injector for
// exercising the Conversion Supervisor's resilience layer: it decides,
// from pure inputs, whether a given (program, stage, attempt) site
// should panic, stall, or fail transiently.
//
// Determinism is the design constraint. A chaos run must produce a
// byte-identical report at any parallelism, so an injector holds no
// firing sequence state: whether a fault fires at a site depends only
// on the rule set, the seed, and the (program, stage, attempt) triple —
// never on the order in which workers happen to reach their sites. The
// probabilistic gate hashes (seed, program, stage, attempt) instead of
// drawing from a shared random stream for the same reason.
//
// An injector travels by context (With/From) so the supervisor's deep
// layers need no plumbing; a nil injector is inert. Production runs
// never carry one — the only writers are chaos tests and the
// `progconv convert -inject` debug flag, whose spec grammar Parse
// documents.
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"path"
	"strconv"
	"strings"
	"time"
)

// injectorKey carries an *Injector through a context.
type injectorKey struct{}

// With returns a context carrying the injector; a nil injector returns
// ctx unchanged.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, in)
}

// From extracts the context's injector; nil (inert) when absent.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(injectorKey{}).(*Injector)
	return in
}

// Kind classifies an injected fault.
type Kind uint8

// The fault kinds.
const (
	// Transient makes the stage fail with an error the supervisor
	// classifies as retryable (core.ErrTransient).
	Transient Kind = iota
	// Panic makes the stage panic with a deterministic message.
	Panic
	// Delay stalls the stage for the rule's Delay (or until the stage's
	// context ends), the lever for forcing budget timeouts.
	Delay
)

var kindNames = [...]string{"transient", "panic", "delay"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "fault(?)"
}

// Rule matches fault sites. The zero values of the predicate fields are
// permissive: an empty Prog or Stage (or "*") matches everything.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Prog is a path.Match glob over program names ("P-00?", "P-0*").
	Prog string
	// Stage is the pipeline stage name ("analyze", "convert", …).
	Stage string
	// Count bounds firing to the first Count attempts at a site
	// (0 means 1): Count 2 on a Transient rule fails attempts 0 and 1,
	// so a supervisor with at least two retries recovers on attempt 2.
	Count int
	// Rate, when in (0, 1), gates firing on a seeded hash of the site so
	// only that fraction of matching sites fault. 0 and ≥1 always fire.
	Rate float64
	// Delay is the stall duration for Delay rules.
	Delay time.Duration
}

func (r Rule) matches(prog, stage string) bool {
	if r.Prog != "" && r.Prog != "*" {
		if ok, err := path.Match(r.Prog, prog); err != nil || !ok {
			return false
		}
	}
	return r.Stage == "" || r.Stage == "*" || r.Stage == stage
}

// Fault is one injection decision: what should happen at the site.
type Fault struct {
	Kind  Kind
	Delay time.Duration
	// Msg is the deterministic description carried into panics,
	// transient errors, and audit trails.
	Msg string
}

// Injector decides faults for sites. It is immutable after construction
// and safe for concurrent use.
type Injector struct {
	seed  int64
	rules []Rule
}

// New builds an injector from explicit rules. The seed only matters for
// rules with a fractional Rate.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules}
}

// At returns the fault to inject at a site, or nil. The first matching
// rule wins. The decision is a pure function of the injector and the
// (prog, stage, attempt) triple.
func (in *Injector) At(prog, stage string, attempt int) *Fault {
	if in == nil {
		return nil
	}
	for i, r := range in.rules {
		if !r.matches(prog, stage) {
			continue
		}
		count := r.Count
		if count <= 0 {
			count = 1
		}
		if attempt >= count {
			continue
		}
		if r.Rate > 0 && r.Rate < 1 && !in.gate(i, prog, stage, attempt, r.Rate) {
			continue
		}
		return &Fault{
			Kind:  r.Kind,
			Delay: r.Delay,
			Msg: fmt.Sprintf("injected %s at %s/%s attempt %d",
				r.Kind, prog, stage, attempt),
		}
	}
	return nil
}

// gate hashes the site with the seed and rule index into [0,1) and
// fires when the hash falls under rate — per-site pseudo-randomness
// with no shared stream, hence schedule-independent.
func (in *Injector) gate(rule int, prog, stage string, attempt int, rate float64) bool {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s|%d", in.seed, rule, prog, stage, attempt)
	const span = 1 << 53 // exactly representable float64 range
	return float64(h.Sum64()%span)/float64(span) < rate
}

// Parse builds an injector from the `-inject` flag grammar: a
// comma-separated list of rules and at most one seed element.
//
//	spec := element (',' element)*
//	element := 'seed=' int
//	         | kind ['=' duration] '@' progGlob '/' stage [':' count] ['~' rate]
//	kind := 'panic' | 'transient' | 'delay'
//
// Examples:
//
//	panic@P-007/convert
//	delay=250ms@P-01*/analyze
//	transient@*/generate:2
//	seed=7,transient@*/analyze~0.05
func Parse(spec string) (*Injector, error) {
	var (
		seed  int64
		rules []Rule
	)
	for _, elem := range strings.Split(spec, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		if v, ok := strings.CutPrefix(elem, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		r, err := parseRule(elem)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: spec %q has no rules", spec)
	}
	return New(seed, rules...), nil
}

func parseRule(elem string) (Rule, error) {
	var r Rule
	head, site, ok := strings.Cut(elem, "@")
	if !ok {
		return r, fmt.Errorf("fault: rule %q needs kind@prog/stage", elem)
	}
	kind, durText, hasDur := strings.Cut(head, "=")
	switch kind {
	case "transient":
		r.Kind = Transient
	case "panic":
		r.Kind = Panic
	case "delay":
		r.Kind = Delay
	default:
		return r, fmt.Errorf("fault: unknown kind %q (want transient|panic|delay)", kind)
	}
	if hasDur {
		if r.Kind != Delay {
			return r, fmt.Errorf("fault: only delay rules take a duration, got %q", elem)
		}
		d, err := time.ParseDuration(durText)
		if err != nil {
			return r, fmt.Errorf("fault: bad duration in %q: %v", elem, err)
		}
		r.Delay = d
	} else if r.Kind == Delay {
		return r, fmt.Errorf("fault: delay rule %q needs delay=<duration>", elem)
	}
	if site, rateText, cut := strings.Cut(site, "~"); cut {
		rate, err := strconv.ParseFloat(rateText, 64)
		if err != nil || rate <= 0 || rate > 1 {
			return r, fmt.Errorf("fault: bad rate in %q (want (0,1])", elem)
		}
		r.Rate = rate
		return finishSite(r, site, elem)
	}
	return finishSite(r, site, elem)
}

func finishSite(r Rule, site, elem string) (Rule, error) {
	if site, countText, cut := strings.Cut(site, ":"); cut {
		n, err := strconv.Atoi(countText)
		if err != nil || n < 1 {
			return r, fmt.Errorf("fault: bad count in %q (want ≥1)", elem)
		}
		r.Count = n
		return splitSite(r, site, elem)
	}
	return splitSite(r, site, elem)
}

func splitSite(r Rule, site, elem string) (Rule, error) {
	prog, stage, ok := strings.Cut(site, "/")
	if !ok {
		return r, fmt.Errorf("fault: rule %q needs prog/stage after @", elem)
	}
	if _, err := path.Match(prog, "probe"); err != nil {
		return r, fmt.Errorf("fault: bad program glob in %q: %v", elem, err)
	}
	r.Prog, r.Stage = prog, stage
	return r, nil
}
