package core

// The supervisor's resilience layer. A production batch over a large
// inventory must survive its own pipeline: a panicking parser, a stage
// that stalls, an interactive analyst who walked away, a flaky external
// dependency. This file contains the machinery that turns each of those
// into a bounded, audited, per-program outcome instead of a crashed or
// hung run:
//
//   - panic isolation: every stage executes under a recover barrier (and
//     a second barrier wraps the whole per-program pipeline), so a panic
//     becomes a Failed outcome carrying the value and stack in the Audit;
//   - budgets: per-program and per-stage context deadlines, plus a bound
//     on each Analyst.Decide call;
//   - retries: errors classified transient via Transient/ErrTransient are
//     retried with capped exponential backoff — deterministic (no jitter)
//     so chaos reports stay byte-identical, with the sleeper injectable
//     so tests never touch the wall clock;
//   - failure policy: FailFast, CollectErrors, or Budget(n) decide
//     whether a Failed outcome aborts the batch.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/fault"
	"progconv/internal/obs"
)

// ErrTransient marks an error as retryable. Stage errors wrapped with
// Transient satisfy errors.Is(err, ErrTransient) and are retried up to
// Supervisor.Retries times before the program is marked Failed.
var ErrTransient = errors.New("core: transient")

// Transient wraps err as retryable; errors.Is finds both ErrTransient
// and the original error through the wrapper. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// ErrFailureBudget reports that a batch aborted because its failure
// policy's tolerance was exhausted. Every policy-driven abort —
// including FailFast's abort on the first failure — wraps it.
var ErrFailureBudget = errors.New("core: failure budget exhausted")

// FailurePolicy decides what a Failed outcome does to the rest of the
// batch. The zero value is FailFast.
type FailurePolicy struct {
	// limit: 0 = fail fast (abort at the first failure), <0 = collect
	// (never abort), n>0 = abort when the nth failure lands.
	limit int
}

// The failure policies.
var (
	// FailFast aborts the batch at the first Failed outcome — the
	// default, matching the supervisor's historical contract that a
	// broken conversion surfaces as a run error.
	FailFast = FailurePolicy{}
	// CollectErrors never aborts: every failure degrades to a Failed
	// outcome and the report covers the full inventory. Reports stay
	// byte-deterministic at any parallelism.
	CollectErrors = FailurePolicy{limit: -1}
)

// Budget returns a policy that tolerates up to n-1 Failed outcomes and
// aborts the batch when the nth lands (n < 1 is treated as 1, i.e.
// FailFast).
func Budget(n int) FailurePolicy {
	if n < 1 {
		n = 1
	}
	return FailurePolicy{limit: n}
}

// threshold is the failure count at which the batch aborts; 0 means
// never.
func (p FailurePolicy) threshold() int {
	switch {
	case p.limit < 0:
		return 0
	case p.limit == 0:
		return 1
	}
	return p.limit
}

// String implements fmt.Stringer.
func (p FailurePolicy) String() string {
	switch {
	case p.limit < 0:
		return "collect-errors"
	case p.limit == 0 || p.limit == 1:
		return "fail-fast"
	}
	return fmt.Sprintf("budget(%d)", p.limit)
}

// FailureKind classifies why a program's conversion failed.
type FailureKind uint8

// The failure kinds.
const (
	// FailError: a stage returned an unrecoverable (or
	// retries-exhausted) error.
	FailError FailureKind = iota
	// FailPanic: a stage or the supervisor's own glue panicked; the
	// recovered value and stack are preserved.
	FailPanic
	// FailTimeout: a per-stage or per-program budget expired.
	FailTimeout
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case FailError:
		return "error"
	case FailPanic:
		return "panic"
	case FailTimeout:
		return "timeout"
	}
	return fmt.Sprintf("failure(%d)", uint8(k))
}

// Failure is the audit evidence behind a Failed disposition: which
// stage broke, how, and after how many attempts. Its rendered forms use
// only configured budgets and deterministic messages so reports remain
// byte-identical at any parallelism; the Stack is kept for debugging
// but never rendered by Report.String.
type Failure struct {
	// Stage is the pipeline stage name ("analyze" … "verify"), or
	// "supervisor" when the fault struck outside any stage, or "program"
	// for a program-budget expiry between stages.
	Stage string
	// Scope is "stage" or "program" for timeouts, "" otherwise.
	Scope string
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the underlying error (nil for panics).
	Err error
	// Value is the recovered panic value, rendered to a string.
	Value string
	// Stack is the panic stack trace (FailPanic only).
	Stack string
	// Budget is the expired budget (FailTimeout only).
	Budget time.Duration
	// Attempts counts executions of the failing stage (1 + retries).
	Attempts int
}

// Error implements error with a deterministic, report-stable message.
func (f *Failure) Error() string {
	switch f.Kind {
	case FailPanic:
		return fmt.Sprintf("panic in the %s stage: %s", f.Stage, f.Value)
	case FailTimeout:
		if f.Scope == "program" {
			return fmt.Sprintf("program budget %s exceeded in the %s stage", f.Budget, f.Stage)
		}
		return fmt.Sprintf("%s stage exceeded its %s budget", f.Stage, f.Budget)
	}
	if f.Attempts > 1 {
		return fmt.Sprintf("%s stage failed after %d attempts: %v", f.Stage, f.Attempts, f.Err)
	}
	return fmt.Sprintf("%s stage failed: %v", f.Stage, f.Err)
}

// Unwrap exposes the underlying stage error to errors.Is/As.
func (f *Failure) Unwrap() error { return f.Err }

// reason is the one-line audit explanation of the Failed disposition.
func (f *Failure) reason() string {
	switch f.Kind {
	case FailPanic:
		return fmt.Sprintf("a panic was isolated in the %s stage", f.Stage)
	case FailTimeout:
		if f.Scope == "program" {
			return "the program budget expired"
		}
		return fmt.Sprintf("the %s stage budget expired", f.Stage)
	}
	if f.Attempts > 1 {
		return fmt.Sprintf("the %s stage failed after %d attempts", f.Stage, f.Attempts)
	}
	return fmt.Sprintf("the %s stage failed", f.Stage)
}

// Retry is one transient-error retry preserved in the audit trail —
// present on successful outcomes too, so "converted, but needed two
// tries" is visible after the fact.
type Retry struct {
	// Stage is the retried stage's name.
	Stage string
	// Attempt is the 1-based retry number.
	Attempt int
	// Err is the transient error that triggered the retry.
	Err string
	// Backoff is the deterministic pause taken before the retry.
	Backoff time.Duration
}

// Budget causes: context cancellation carries one of these so the
// supervisor can tell its own deadlines apart from a batch abort.
var (
	errProgramBudget = errors.New("core: program budget exceeded")
	errStageBudget   = errors.New("core: stage budget exceeded")
)

// Default retry backoff: base doubles per attempt, capped.
const (
	defaultRetryBackoff = 50 * time.Millisecond
	maxRetryBackoff     = 5 * time.Second
)

// retryBackoff returns the pause before retry attempt (0-based): base
// doubled per attempt, capped. Deliberately jitter-free — backoff values
// land in the audit trail and the event log, which must stay
// byte-deterministic; a paper-scale batch has no thundering herd to
// spread.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << uint(attempt)
	if d > maxRetryBackoff || d <= 0 {
		return maxRetryBackoff
	}
	return d
}

// Backoff is the exported form of the retry backoff schedule, so other
// layers that retry (the v1 client SDK, the dispatch coordinator) pace
// themselves identically to the supervisor instead of growing a second
// formula.
func Backoff(base time.Duration, attempt int) time.Duration {
	return retryBackoff(base, attempt)
}

// sleep pauses for d or until ctx ends, through the injected sleeper
// when one is set (tests pass a recording sleeper so retry chains never
// touch the wall clock).
func (s *Supervisor) sleep(ctx context.Context, d time.Duration) error {
	if s.Sleep != nil {
		return s.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// panicRecord is one recovered panic.
type panicRecord struct {
	value any
	stack string
}

// protect runs one stage attempt under a recover barrier, applying any
// context-carried fault injection first. After a successful fn it
// enforces the context: a stage that overran its budget does not get to
// keep its result, which makes budgets effective even for stages that
// never check ctx themselves.
func protect(ctx context.Context, inj *fault.Injector, prog, stage string,
	attempt int, fn func(context.Context) error) (err error, pan *panicRecord) {
	defer func() {
		if v := recover(); v != nil {
			err = nil
			pan = &panicRecord{value: v, stack: string(debug.Stack())}
		}
	}()
	if f := inj.At(prog, stage, attempt); f != nil {
		switch f.Kind {
		case fault.Panic:
			panic(f.Msg)
		case fault.Transient:
			return Transient(errors.New(f.Msg)), nil
		case fault.Delay:
			t := time.NewTimer(f.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err(), nil
			}
		}
	}
	if err := fn(ctx); err != nil {
		return err, nil
	}
	return ctx.Err(), nil
}

// stage runs one pipeline stage for one program with the full
// resilience contract: fault injection, panic recovery, per-stage
// budget, transient retries with backoff. It returns nil on success, a
// *Failure (as error) when the program should land at Failed, or the
// raw context error when the batch itself is being canceled. Retries
// are appended to o's audit trail as they happen.
func (s *Supervisor) stage(ctx context.Context, run *runState, prog string,
	st obs.Stage, o *Outcome, fn func(context.Context) error) error {
	em := run.em
	name := st.String()
	for attempt := 0; ; attempt++ {
		stageCtx := ctx
		var cancel context.CancelFunc
		if s.StageTimeout > 0 {
			stageCtx, cancel = context.WithTimeoutCause(ctx, s.StageTimeout, errStageBudget)
		}
		em.StageStart(prog, st)
		span := s.Metrics.StartSpan(prog, st)
		err, pan := protect(stageCtx, run.inj, prog, name, attempt, fn)
		em.StageEnd(prog, st, span.End())
		var cause error
		if err != nil {
			cause = context.Cause(stageCtx)
		}
		if cancel != nil {
			cancel()
		}
		switch {
		case pan != nil:
			return &Failure{Stage: name, Kind: FailPanic,
				Value: fmt.Sprint(pan.value), Stack: pan.stack, Attempts: attempt + 1}
		case err == nil:
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			switch cause {
			case errStageBudget:
				return &Failure{Stage: name, Scope: "stage", Kind: FailTimeout,
					Err: err, Budget: s.StageTimeout, Attempts: attempt + 1}
			case errProgramBudget:
				return &Failure{Stage: name, Scope: "program", Kind: FailTimeout,
					Err: err, Budget: s.ProgramTimeout, Attempts: attempt + 1}
			}
			return err // the batch is going down; not this program's fault
		case errors.Is(err, ErrTransient) && attempt < s.Retries:
			backoff := retryBackoff(s.RetryBackoff, attempt)
			em.Retry(prog, name, attempt+1, backoff, err.Error())
			o.Audit.Retries = append(o.Audit.Retries,
				Retry{Stage: name, Attempt: attempt + 1, Err: err.Error(), Backoff: backoff})
			if serr := s.sleep(ctx, backoff); serr != nil {
				if context.Cause(ctx) == errProgramBudget {
					return &Failure{Stage: name, Scope: "program", Kind: FailTimeout,
						Err: serr, Budget: s.ProgramTimeout, Attempts: attempt + 1}
				}
				return serr
			}
		default:
			return &Failure{Stage: name, Kind: FailError, Err: err, Attempts: attempt + 1}
		}
	}
}

// failProgram lands o at Failed with f as evidence, emitting the
// panic/timeout event (exactly once per failure — here, not in stage)
// and the closing outcome event.
func (s *Supervisor) failProgram(run *runState, o *Outcome, f *Failure) {
	o.Disposition = Failed
	o.Audit.Failure = f
	o.Audit.Reason = f.reason()
	switch f.Kind {
	case FailPanic:
		run.em.Panic(o.Name, f.Stage, f.Value)
	case FailTimeout:
		scope := f.Stage
		if f.Scope == "program" {
			scope = "program"
		}
		run.em.Timeout(o.Name, scope, f.Budget)
	}
	run.em.Outcome(o.Name, Failed.String(), o.Audit.Reason)
}

// convertOneIsolated is the per-program fault barrier around
// convertOne: a panic anywhere in the pipeline — including supervisor
// glue and Analyst implementations — degrades to a Failed outcome
// instead of crashing the worker pool.
func (s *Supervisor) convertOneIsolated(ctx context.Context, run *runState,
	p *dbprog.Program) (o Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			o = Outcome{Name: p.Name}
			err = &Failure{Stage: "supervisor", Kind: FailPanic,
				Value: fmt.Sprint(v), Stack: string(debug.Stack()), Attempts: 1}
		}
	}()
	return s.convertOne(ctx, run, p)
}

// convertProgram is the worker entry point for one program: the
// per-program budget plus the panic barrier around the whole pipeline.
func (s *Supervisor) convertProgram(ctx context.Context, run *runState,
	p *dbprog.Program) (Outcome, error) {
	if s.ProgramTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.ProgramTimeout, errProgramBudget)
		defer cancel()
	}
	return s.convertOneIsolated(ctx, run, p)
}

// classifyCtxErr turns a between-stage context error into a Failure
// when this program's own budget expired; a batch cancellation passes
// through untouched.
func (s *Supervisor) classifyCtxErr(ctx context.Context, err error) error {
	if context.Cause(ctx) == errProgramBudget {
		return &Failure{Stage: "supervisor", Scope: "program", Kind: FailTimeout,
			Err: err, Budget: s.ProgramTimeout, Attempts: 1}
	}
	return err
}

// batchAbort is the error a failure policy raises when its tolerance is
// exhausted; it matches both ErrFailureBudget and the triggering
// failure's own error chain.
type batchAbort struct {
	name string
	f    *Failure
}

func (e *batchAbort) Error() string {
	return fmt.Sprintf("core: converting %s: %v", e.name, e.f)
}

// Unwrap exposes the sentinel and the failure to errors.Is/As.
func (e *batchAbort) Unwrap() []error { return []error{ErrFailureBudget, e.f} }

// decide consults the Analyst under the serialization lock, bounded by
// AnalystTimeout when one is set. A timeout degrades to a declined
// decision (the strict-policy fallback) and reports timedOut; an
// analyst panic is re-raised on the worker so the per-program barrier
// records it as a Failed outcome. After a timeout the abandoned Decide
// call keeps running on its own goroutine — its late answer is
// discarded, and the next consultation may overlap with it (but never
// with another live one).
func (s *Supervisor) decide(run *runState, program string, issue analyzer.Issue) (accepted, timedOut bool) {
	run.analystMu.Lock()
	defer run.analystMu.Unlock()
	if s.AnalystTimeout <= 0 {
		return s.Analyst.Decide(program, issue), false
	}
	type reply struct {
		ok  bool
		pan *panicRecord
	}
	ch := make(chan reply, 1)
	go func() {
		var r reply
		defer func() {
			if v := recover(); v != nil {
				r.pan = &panicRecord{value: v, stack: string(debug.Stack())}
			}
			ch <- r
		}()
		r.ok = s.Analyst.Decide(program, issue)
	}()
	t := time.NewTimer(s.AnalystTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		if r.pan != nil {
			panic(r.pan.value)
		}
		return r.ok, false
	case <-t.C:
		return false, true
	}
}
