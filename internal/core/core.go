// Package core is the Conversion Supervisor of Figure 4.1: the monitor
// that "oversees the operation of the other modules" — Conversion
// Analyzer (xform.Classify), Program Analyzer, Program Converter,
// Optimizer, and Program Generator — under the direction of a Conversion
// Analyst. The paper expects "an interactive system would be most
// successful"; the Analyst interface is that interaction point, and
// Policy is the replayable non-interactive analyst.
//
// The supervisor is a concurrent batch engine: per-program conversion is
// embarrassingly parallel (each analyze → convert → optimize → generate
// → verify chain reads only the shared schemas, plan, and migrated
// database), so Run fans the inventory out over a bounded worker pool
// while keeping the Report deterministic — outcomes land in submission
// order and are byte-identical to a serial run.
//
// # Error contract
//
// Run fails with typed sentinel errors checkable via errors.Is:
//
//   - ErrCanceled (wrapping context.Canceled or DeadlineExceeded) when
//     the context ends mid-batch;
//   - ErrFailureBudget when the failure policy's tolerance is exhausted
//     (under the default FailFast policy, on the first Failed program);
//   - xform.ErrHazardUnresolved when the schema diff is not explained by
//     the transformation catalogue (an Analyst must supply the plan);
//   - xform.ErrNotInvertible is never raised by Run itself but flows
//     through unchanged from plan-inversion helpers.
//
// Per-program conversion failures carry the program name in the message
// and wrap the stage error via %w.
//
// # Resilience
//
// Stage execution is isolated and budgeted: panics become Failed
// outcomes with the recovered value and stack preserved in the Audit,
// per-stage and per-program deadlines (StageTimeout, ProgramTimeout)
// bound runaway work, Analyst consultations are bounded by
// AnalystTimeout, and errors marked with Transient are retried with
// deterministic capped backoff. FailurePolicy decides whether a Failed
// program aborts the batch (FailFast, the default), is tolerated up to
// a budget (Budget), or merely degrades that program's outcome
// (CollectErrors). See resilience.go.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"progconv/internal/analyzer"
	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/equiv"
	"progconv/internal/fault"
	"progconv/internal/fingerprint"
	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/obs"
	"progconv/internal/optimizer"
	"progconv/internal/plancache"
	"progconv/internal/schema"
	"progconv/internal/telemetry"
	"progconv/internal/xform"
)

// ErrCanceled reports that a conversion run was abandoned because its
// context was canceled or its deadline passed. Errors returned by Run
// in that case satisfy errors.Is(err, ErrCanceled) as well as
// errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("core: conversion canceled")

func canceledErr(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Analyst answers the questions automation cannot: whether a qualified
// conversion (one that weakens strict I/O equivalence, like an accepted
// order change) should proceed.
//
// The supervisor serializes Decide calls even during a parallel run, so
// implementations (interactive ones in particular) need no internal
// locking; calls arrive in a nondeterministic but non-overlapping order.
type Analyst interface {
	// Decide returns true to accept the qualified conversion of the named
	// program despite the issue.
	Decide(program string, issue analyzer.Issue) bool
}

// Policy is the non-interactive analyst: fixed, documented decisions.
type Policy struct {
	// AcceptOrderChanges accepts conversions whose output order may
	// change (§5.2's "levels of successful conversion": the program is
	// converted, with a warning, rather than strictly equivalent).
	AcceptOrderChanges bool
}

// Decide implements Analyst.
func (p Policy) Decide(program string, issue analyzer.Issue) bool {
	if issue.Kind == analyzer.OrderDependence {
		return p.AcceptOrderChanges
	}
	return false
}

// Disposition classifies a program's conversion outcome.
type Disposition uint8

// The dispositions.
const (
	// Auto: converted fully automatically, strict equivalence expected.
	Auto Disposition = iota
	// Qualified: converted after the Analyst accepted a weaker
	// equivalence (order change).
	Qualified
	// Manual: routed to hand conversion.
	Manual
	// Failed: the pipeline itself broke on this program — a stage
	// panicked, exceeded its budget, or errored past its retry
	// allowance. The Audit's Failure field holds the evidence.
	Failed
)

// String implements fmt.Stringer; unknown values render as
// "disposition(N)" rather than collapsing to an ambiguous placeholder.
func (d Disposition) String() string {
	switch d {
	case Auto:
		return "auto"
	case Qualified:
		return "qualified"
	case Manual:
		return "manual"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("disposition(%d)", uint8(d))
}

// MarshalText implements encoding.TextMarshaler so dispositions
// serialize cleanly in stats and report output.
func (d Disposition) MarshalText() ([]byte, error) {
	return []byte(d.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting exactly
// the strings MarshalText produces for the known dispositions.
func (d *Disposition) UnmarshalText(text []byte) error {
	switch string(text) {
	case "auto":
		*d = Auto
	case "qualified":
		*d = Qualified
	case "manual":
		*d = Manual
	case "failed":
		*d = Failed
	default:
		return fmt.Errorf("core: unknown disposition %q", text)
	}
	return nil
}

// Decision is one Analyst consultation preserved in the audit trail.
type Decision struct {
	Issue    analyzer.Issue
	Accepted bool
	// TimedOut reports that the Analyst did not answer within
	// AnalystTimeout; Accepted is then the strict-policy fallback
	// (declined).
	TimedOut bool
}

// Audit explains why an Outcome landed at its Disposition — the decision
// trail an auditor (or a later re-run) needs to reconstruct the
// supervisor's reasoning without replaying the conversion.
type Audit struct {
	// Reason is the one-line explanation of the disposition.
	Reason string
	// Model names the data model the program was converted under
	// (ModelNetwork or ModelHierarchical) — always set.
	Model string
	// Pair is the content fingerprint of the schema pair (source schema
	// plus plan) whose artifacts converted this program, so the trail
	// identifies which cached plan produced a rewrite even when the pair
	// context came from a shared cache.
	Pair string
	// Hazards lists the issue kinds found, in report order.
	Hazards []string
	// PlanStep is the catalogue name of the plan step implicated by
	// converter findings ("" when none was attributable).
	PlanStep string
	// Decisions are the Analyst consultations, in the order asked.
	Decisions []Decision
	// Failure is the evidence behind a Failed disposition (nil
	// otherwise): the broken stage, the failure kind, and — for panics —
	// the recovered value and stack.
	Failure *Failure
	// Retries are the transient-error retries taken while converting
	// this program, in order; present on successful outcomes too.
	Retries []Retry
}

// Outcome is one program's conversion record.
type Outcome struct {
	Name          string
	Disposition   Disposition
	Issues        []analyzer.Issue
	Notes         []string
	Optimizations []optimizer.Optimization
	Converted     *dbprog.Program
	// Generated is the Program Generator's rendering of Converted as
	// target source text ("" when nothing was converted).
	Generated string
	// Verified holds the equivalence check against the migrated data,
	// when the supervisor was given a database to verify with.
	Verified *equiv.Verdict
	// Audit records why the disposition was chosen.
	Audit Audit
}

// Report is the supervisor's full record of one conversion run.
type Report struct {
	// Model names the data model the run converted under (ModelNetwork
	// or ModelHierarchical).
	Model           string
	PlanDescription string
	Invertible      bool
	// TargetSchema and TargetDB are set for network-model runs,
	// TargetHierarchy and TargetHierDB for hierarchical ones.
	TargetSchema    *schema.Network
	TargetDB        *netstore.DB
	TargetHierarchy *schema.Hierarchy
	TargetHierDB    *hierstore.DB
	// MigrationWarnings are the data translation's per-occurrence
	// advisories (dropped unreachable occurrences, merged roots); the
	// network migrator raises none today.
	MigrationWarnings []string
	Outcomes          []Outcome
	// Metrics summarizes per-stage timings when the supervisor ran with
	// a metrics recorder (nil otherwise). It is rendered separately from
	// String so serial and parallel reports stay byte-identical.
	Metrics *obs.Metrics
	// DataPlane counts how the run's data-plane work executed: FIND
	// index probes vs scans across this run (migration + verification)
	// and fused vs stepwise migration steps. Like Metrics it is not part
	// of String(): the totals are deterministic at any parallelism, but
	// reports predating the fast path must stay byte-identical.
	DataPlane obs.DataPlane
	// Trace is the span tree assembled when the run was instrumented
	// with a trace builder (WithTraceSink; nil otherwise). Like Metrics
	// it is excluded from String() and from the wire report — the trace
	// has its own wire document and daemon endpoint.
	Trace *telemetry.Trace
}

// Counts returns (auto, qualified, manual).
func (r *Report) Counts() (auto, qualified, manual int) {
	for _, o := range r.Outcomes {
		switch o.Disposition {
		case Auto:
			auto++
		case Qualified:
			qualified++
		case Manual:
			manual++
		}
	}
	return
}

// FailedCount returns how many programs landed at Failed — possible
// only under the CollectErrors or Budget failure policies, which let a
// run complete around broken programs.
func (r *Report) FailedCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Disposition == Failed {
			n++
		}
	}
	return n
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("CONVERSION PLAN\n")
	b.WriteString(r.PlanDescription)
	fmt.Fprintf(&b, "invertible: %v\n", r.Invertible)
	// Migration warnings render only when present, so network reports —
	// whose migrator raises none — keep their historical bytes.
	for _, w := range r.MigrationWarnings {
		fmt.Fprintf(&b, "migration: %s\n", w)
	}
	b.WriteString("\n")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-24s %s", o.Name, o.Disposition)
		if o.Verified != nil {
			if o.Verified.Equal {
				b.WriteString("  [verified]")
			} else {
				fmt.Fprintf(&b, "  [DIVERGED: %s]", o.Verified.Diff())
			}
		}
		b.WriteString("\n")
		for _, i := range o.Issues {
			fmt.Fprintf(&b, "    ! %s\n", i)
		}
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "    ~ %s\n", n)
		}
		for _, op := range o.Optimizations {
			fmt.Fprintf(&b, "    * %s: %s\n", op.Rule, op.Note)
		}
		// Failure and retry evidence renders from configured budgets and
		// deterministic messages only (never stacks or wall-clock values),
		// keeping the report byte-identical at any parallelism.
		if f := o.Audit.Failure; f != nil {
			fmt.Fprintf(&b, "    x %s\n", f.Error())
		}
		for _, rt := range o.Audit.Retries {
			fmt.Fprintf(&b, "    ^ retry %d of %s after %s: %s\n",
				rt.Attempt, rt.Stage, rt.Backoff, rt.Err)
		}
	}
	auto, qualified, manual := r.Counts()
	if failed := r.FailedCount(); failed > 0 {
		fmt.Fprintf(&b, "\n%d auto, %d qualified, %d manual, %d failed of %d programs\n",
			auto, qualified, manual, failed, len(r.Outcomes))
	} else {
		fmt.Fprintf(&b, "\n%d auto, %d qualified, %d manual of %d programs\n",
			auto, qualified, manual, len(r.Outcomes))
	}
	return b.String()
}

// Supervisor orchestrates a conversion.
type Supervisor struct {
	Analyst Analyst
	// Verify runs each converted program against the migrated database
	// and compares traces (skipped for programs with database-visible
	// writes when the analyst accepted an order change, since their runs
	// mutate state).
	Verify bool
	// Parallelism bounds the worker pool converting the program
	// inventory. Zero or negative means runtime.GOMAXPROCS(0); 1 forces
	// a serial run. Reports are deterministic at any setting.
	Parallelism int
	// MigrationParallelism bounds the shard workers of the data
	// translation pass. Zero or negative means runtime.GOMAXPROCS(0);
	// 1 forces a serial migration. The migrated database and every
	// report field are byte-identical at any setting.
	MigrationParallelism int
	// Metrics, when non-nil, records one span per pipeline stage per
	// program; Run snapshots it into Report.Metrics.
	Metrics *obs.Recorder
	// Events, when non-nil, receives the structured event log: stage
	// boundaries, hazards, rewrites, Analyst decisions, verification
	// verdicts, and outcomes. Within one program the events arrive in
	// pipeline order regardless of Parallelism.
	Events obs.Sink

	// ProgramTimeout bounds one program's whole analyze → verify chain;
	// zero means unbounded. An expiry fails that program (Failed, with
	// FailTimeout evidence), not the batch.
	ProgramTimeout time.Duration
	// StageTimeout bounds each pipeline stage attempt; zero means
	// unbounded.
	StageTimeout time.Duration
	// AnalystTimeout bounds each Analyst.Decide call; zero means
	// unbounded. An expiry degrades to the strict-policy fallback
	// (declined) and is recorded as a timed-out Decision.
	AnalystTimeout time.Duration
	// Retries is how many times a stage attempt failing with a Transient
	// error is retried (0 = no retries).
	Retries int
	// RetryBackoff is the base backoff before the first retry, doubled
	// per attempt and capped; zero means the 50ms default. Backoff is
	// deliberately jitter-free so audit trails stay deterministic.
	RetryBackoff time.Duration
	// Sleep, when non-nil, replaces the real clock for retry backoff —
	// tests inject an instant sleeper so retry chains cost no wall time.
	// It must respect ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// FailurePolicy decides what a Failed program does to the rest of
	// the batch; the zero value is FailFast.
	FailurePolicy FailurePolicy

	// Cache, when non-nil, memoizes the pair-scoped artifacts (classified
	// plan, target schema, rewrite rules, access-path graph, cost tables)
	// and per-program analysis/conversion results across runs. One cache
	// is safe to share between concurrent supervisors; see plancache.
	Cache *plancache.Cache
}

// NewSupervisor returns a supervisor with the default strict policy.
func NewSupervisor() *Supervisor {
	return &Supervisor{Analyst: Policy{}, Verify: true}
}

func (s *Supervisor) workers(n int) int {
	w := s.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// migratePair runs the data-translation stage under the stage budget:
// StageTimeout bounds the migration like any other pipeline stage, and
// the sharded rebuild polls the deadline mid-extent, so a large
// database cannot stall a bounded run.
func (s *Supervisor) migratePair(ctx context.Context, pair ModelPair, r *Report) error {
	if s.StageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.StageTimeout)
		defer cancel()
	}
	return pair.migrate(ctx, s, r)
}

// runState is the read-only context one job shares across workers, plus
// the batch-wide serialization point (the Analyst). In a multi-pair
// batch each job gets its own runState but all share one analyst mutex
// and one emitter.
type runState struct {
	pair ModelPair
	em   *obs.Emitter    // nil when the run is unobserved
	inj  *fault.Injector // nil unless a chaos harness armed the context

	analystMu *sync.Mutex
}

// PairContext is the immutable pair-scoped layer of the network
// pipeline: every artifact derived from (source schema, plan) alone,
// computed once per pair — and, through a Cache, shared across runs.
// Workers only read it.
type PairContext = plancache.Pair

// PreparePair assembles the model pair for one spec, serving the
// pair-scoped artifacts from the supervisor's Cache when one is
// installed (building and memoizing on miss) and building them cold
// otherwise.
func (s *Supervisor) PreparePair(ctx context.Context, spec PairSpec) (ModelPair, error) {
	return spec.prepare(ctx, s)
}

// Job is one conversion-pair workload within a RunJobs batch. Spec
// carries the pair in any data model; the Src/Dst/Plan/DB fields are
// the historical network-model form, consulted only when Spec is nil.
type Job struct {
	// Spec describes the pair to convert (any model). When nil, the
	// network-model fields below are used instead.
	Spec PairSpec
	// Src is the source schema and Dst the target; Dst may be nil when
	// an explicit Plan is given.
	Src, Dst *schema.Network
	// Plan, when non-nil, overrides classification of the schema diff.
	Plan *xform.Plan
	// DB, when non-nil, is migrated through the plan and used to verify
	// automatic conversions.
	DB *netstore.DB
	// Programs is the pair's program inventory.
	Programs []*dbprog.Program
}

// pairSpec resolves the job's spec, folding the legacy network fields
// into a NetworkSpec when none was set.
func (j *Job) pairSpec() PairSpec {
	if j.Spec != nil {
		return j.Spec
	}
	return NetworkSpec{Src: j.Src, Dst: j.Dst, Plan: j.Plan, DB: j.DB}
}

// Run converts a database application system: it classifies the schema
// change (unless an explicit plan is given), restructures the data, and
// converts every program — "a database application system is converted
// when each program actually existing in the source system has been
// converted" (§1.1). Programs convert concurrently on the supervisor's
// worker pool; ctx cancels the batch (Run then fails with ErrCanceled).
func (s *Supervisor) Run(ctx context.Context, src, dst *schema.Network, plan *xform.Plan,
	db *netstore.DB, progs []*dbprog.Program) (*Report, error) {
	reports, err := s.RunJobs(ctx, []Job{{Src: src, Dst: dst, Plan: plan, DB: db, Programs: progs}})
	if err != nil {
		return nil, err
	}
	report := reports[0]
	report.Metrics = s.Metrics.Snapshot()
	return report, nil
}

// RunHier is Run over the hierarchical (DL/I) model: classify the
// hierarchy change (unless an explicit plan is given), restructure the
// data, and convert every program. Same contract and determinism
// guarantees as Run.
func (s *Supervisor) RunHier(ctx context.Context, src, dst *schema.Hierarchy, plan *xform.HierPlan,
	db *hierstore.DB, progs []*dbprog.Program) (*Report, error) {
	reports, err := s.RunJobs(ctx, []Job{{Spec: HierSpec{Src: src, Dst: dst, Plan: plan, DB: db}, Programs: progs}})
	if err != nil {
		return nil, err
	}
	report := reports[0]
	report.Metrics = s.Metrics.Snapshot()
	return report, nil
}

// RunJobs converts the program inventories of many schema pairs in one
// batch: each job's pair context is prepared (or served from the
// Cache) and its data migrated up front, then every program from every
// job is interleaved on one shared worker pool. Sub-reports are
// assembled at submission order — reports[i] belongs to jobs[i] and is
// byte-identical at any parallelism. The failure-policy budget and the
// analyst serialization span the whole batch. Job reports carry no
// Metrics snapshot; a caller-held Recorder aggregates across the batch
// (Run, the single-job form, attaches the snapshot itself).
func (s *Supervisor) RunJobs(ctx context.Context, jobs []Job) ([]*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(context.Cause(ctx))
	}
	em := obs.NewEmitter(s.Events)
	// The emitter travels by context into the deeper layers (analyzer,
	// converter, equivalence checker, cache); WithEmitter is the identity
	// for a nil emitter, so unobserved runs pay nothing.
	ctx = obs.WithEmitter(ctx, em)
	inj := fault.From(ctx)
	analystMu := &sync.Mutex{}

	reports := make([]*Report, len(jobs))
	pairs := make([]ModelPair, len(jobs))
	var items []workItem
	for ji := range jobs {
		j := &jobs[ji]
		spec := j.pairSpec()
		pair, err := s.PreparePair(ctx, spec)
		if err != nil {
			var be *plancache.BuildError
			if errors.As(err, &be) && be.Phase == plancache.PhaseClassify {
				if specHasDB(spec) {
					// The caller supplied a verification database; make clear
					// that the failure struck before any data was touched.
					return nil, fmt.Errorf("core: conversion analyzer: %w (the verify database was never migrated)", be.Err)
				}
				return nil, fmt.Errorf("core: conversion analyzer: %w", be.Err)
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, canceledErr(context.Cause(ctx))
			}
			return nil, err
		}
		report := &Report{
			Model:           pair.Model(),
			PlanDescription: pair.Description(),
			Invertible:      pair.Invertible(),
		}
		pair.attach(report)
		if err := s.migratePair(ctx, pair, report); err != nil {
			return nil, fmt.Errorf("core: data translation: %w", err)
		}
		run := &runState{pair: pair, em: em, inj: inj, analystMu: analystMu}
		report.Outcomes = make([]Outcome, len(j.Programs))
		for pi, p := range j.Programs {
			items = append(items, workItem{run: run, prog: p, out: &report.Outcomes[pi]})
		}
		reports[ji] = report
		pairs[ji] = pair
	}
	if err := s.convertItems(ctx, items); err != nil {
		return nil, err
	}
	// Fold in each job's data-plane activity (index probe/scan deltas
	// for the network model) after the batch drains.
	for ji := range jobs {
		pairs[ji].foldStats(reports[ji])
	}
	return reports, nil
}

// specHasDB reports whether a spec carries a verification database —
// error-message context for failures that strike before migration.
func specHasDB(spec PairSpec) bool {
	switch sp := spec.(type) {
	case NetworkSpec:
		return sp.DB != nil
	case HierSpec:
		return sp.DB != nil
	}
	return false
}

// workItem is one program's slot in a batch: the pair-scoped state it
// reads and the outcome cell it writes. Cells are pre-allocated at
// submission order, so scheduling can never move a result.
type workItem struct {
	run  *runState
	prog *dbprog.Program
	out  *Outcome
}

// convertItems drains the batch over the worker pool, writing each
// program's outcome into its submission-order cell. Serial and parallel
// runs share this one code path — a serial run is simply a pool of one
// worker — so failure-policy accounting cannot drift between them.
func (s *Supervisor) convertItems(ctx context.Context, items []workItem) error {
	if len(items) == 0 {
		return ctx.Err()
	}
	workers := s.workers(len(items))
	threshold := s.FailurePolicy.threshold()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failIdx  = -1
		failErr  error
		canceled bool
		failures int
		aborted  bool
	)
	fail := func(i int, err error) {
		mu.Lock()
		var abort *batchAbort
		switch {
		case !errors.As(err, &abort) &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			// A worker observing the pool shutting down is not the root
			// cause; remember only that cancellation happened. A batch
			// abort is never reclassified this way — the failure that
			// exhausted the budget may itself carry a timeout's context
			// error, and it must still surface as ErrFailureBudget.
			canceled = true
		case failIdx < 0 || i < failIdx:
			// The lowest submission index with a genuine failure wins, so
			// the reported error matches what a serial run would surface.
			failIdx, failErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	idxs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxs {
				it := items[i]
				o, err := s.convertProgram(runCtx, it.run, it.prog)
				if err != nil {
					var f *Failure
					if !errors.As(err, &f) {
						fail(i, err)
						continue
					}
					// The pipeline broke on this program alone: land it at
					// Failed and let the policy decide the batch's fate.
					s.failProgram(it.run, &o, f)
					*it.out = o
					mu.Lock()
					failures++
					crossed := threshold > 0 && failures >= threshold && !aborted
					if crossed {
						aborted = true
					}
					mu.Unlock()
					if crossed {
						fail(i, &batchAbort{name: it.prog.Name, f: f})
					}
					continue
				}
				*it.out = o
			}
		}()
	}
feed:
	for i := range items {
		select {
		case idxs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idxs)
	wg.Wait()

	if failErr != nil {
		return failErr
	}
	if err := ctx.Err(); err != nil {
		return canceledErr(context.Cause(ctx))
	}
	if canceled {
		// Cancellation was observed but the parent context survived —
		// cannot happen with the pool's own cancel unless a stage raised
		// a context error spuriously; surface it rather than returning a
		// report with holes.
		return canceledErr(nil)
	}
	return nil
}

// convertOne runs the Figure 4.1 pipeline for a single program through
// the resilient stage runner: each stage executes under a recover
// barrier with fault injection, a per-stage budget, and transient-error
// retries. It returns a *Failure (as error) when this program alone
// should land at Failed, or the raw context error when the batch itself
// is ending.
func (s *Supervisor) convertOne(ctx context.Context, run *runState, p *dbprog.Program) (Outcome, error) {
	o := Outcome{Name: p.Name}
	o.Audit.Model = run.pair.Model()
	o.Audit.Pair = string(run.pair.Key())
	if err := ctx.Err(); err != nil {
		return o, s.classifyCtxErr(ctx, err)
	}

	// The program's content hash keys every program-scoped memo; compute
	// it once, only when a cache is installed.
	var ph fingerprint.Hash
	if s.Cache != nil {
		ph = fingerprint.Program(p)
	}

	em := run.em
	var abs *analyzer.Abstract
	if err := s.stage(ctx, run, p.Name, obs.StageAnalyze, &o, func(ctx context.Context) error {
		abs = run.pair.analyze(ctx, s.Cache, ph, p)
		return nil
	}); err != nil {
		return o, err
	}

	var res *convert.Result
	if err := s.stage(ctx, run, p.Name, obs.StageConvert, &o, func(ctx context.Context) error {
		var err error
		res, err = run.pair.convertProg(ctx, s.Cache, ph, abs)
		return err
	}); err != nil {
		return o, err
	}
	o.Issues = res.Issues
	o.Notes = res.Notes
	for _, i := range res.Issues {
		o.Audit.Hazards = append(o.Audit.Hazards, i.Kind.String())
	}
	o.Audit.PlanStep = res.PlanStep
	switch {
	case res.Auto:
		o.Disposition = Auto
		o.Converted = res.Program
		o.Audit.Reason = "every statement matched a rewrite rule"
	case res.Program != nil:
		accepted, decisions := s.analystAccepts(run, p.Name, res.Issues)
		o.Audit.Decisions = decisions
		if accepted {
			o.Disposition = Qualified
			o.Converted = res.Program
			o.Audit.Reason = "analyst accepted a weaker equivalence"
		} else {
			o.Disposition = Manual
			o.Audit.Reason = manualReason(decisions, res.Issues)
		}
	default:
		o.Disposition = Manual
		o.Audit.Reason = "a blocking hazard stopped conversion"
	}
	if o.Converted != nil {
		var generated string
		if err := s.stage(ctx, run, p.Name, obs.StageOptimize, &o, func(ctx context.Context) error {
			opt, applied, gen := run.pair.optimize(ctx, s.Cache, ph, p.Name, o.Converted)
			o.Converted = opt
			o.Optimizations = applied
			generated = gen
			return nil
		}); err != nil {
			return o, err
		}

		if err := s.stage(ctx, run, p.Name, obs.StageGenerate, &o, func(ctx context.Context) error {
			if generated != "" {
				o.Generated = generated
				return nil
			}
			o.Generated = dbprog.Format(o.Converted)
			return nil
		}); err != nil {
			return o, err
		}
	}
	if s.Verify && run.pair.verifiable() && o.Disposition == Auto && o.Converted != nil {
		if err := s.stage(ctx, run, p.Name, obs.StageVerify, &o, func(ctx context.Context) error {
			v := run.pair.verify(ctx, p, o.Converted)
			o.Verified = &v
			return nil
		}); err != nil {
			return o, err
		}
	}
	if err := ctx.Err(); err != nil {
		// A stage may have returned early under cancellation; do not let
		// its partial result stand as a real outcome.
		return o, s.classifyCtxErr(ctx, err)
	}
	em.Outcome(p.Name, o.Disposition.String(), o.Audit.Reason)
	return o, nil
}

// manualReason explains a Manual disposition for the audit trail.
func manualReason(decisions []Decision, issues []analyzer.Issue) string {
	for _, d := range decisions {
		if d.TimedOut {
			return fmt.Sprintf("the analyst consultation on the %s finding timed out", d.Issue.Kind)
		}
		if !d.Accepted {
			return fmt.Sprintf("analyst declined the %s finding", d.Issue.Kind)
		}
	}
	for _, i := range issues {
		switch i.Kind {
		case analyzer.OrderDependence, analyzer.ProcessFirst, analyzer.StatusCodeDependence:
		default:
			return fmt.Sprintf("the %s finding admits no qualified conversion", i.Kind)
		}
	}
	return "no finding qualified for analyst review"
}

// analystAccepts asks the analyst about every converter-raised issue; a
// qualified conversion needs every one accepted, and only order
// dependence is ever acceptable (anything else means the emitted text is
// not a correct program for the new schema). Decide calls are serialized
// so interactive analysts never field overlapping questions. The second
// result is the audit trail of every consultation actually made.
func (s *Supervisor) analystAccepts(run *runState, program string, issues []analyzer.Issue) (bool, []Decision) {
	any := false
	var decisions []Decision
	for _, i := range issues {
		switch i.Kind {
		case analyzer.OrderDependence:
			ok, timedOut := s.decide(run, program, i)
			decisions = append(decisions, Decision{Issue: i, Accepted: ok, TimedOut: timedOut})
			if timedOut {
				run.em.Timeout(program, "analyst", s.AnalystTimeout)
			}
			run.em.Decision(program, i.Kind.String(), i.Msg, ok)
			if !ok {
				return false, decisions
			}
			any = true
		case analyzer.ProcessFirst, analyzer.StatusCodeDependence:
			// Warnings; they do not gate the converted text.
		default:
			return false, decisions
		}
	}
	return any, decisions
}
