// Package core is the Conversion Supervisor of Figure 4.1: the monitor
// that "oversees the operation of the other modules" — Conversion
// Analyzer (xform.Classify), Program Analyzer, Program Converter,
// Optimizer, and Program Generator — under the direction of a Conversion
// Analyst. The paper expects "an interactive system would be most
// successful"; the Analyst interface is that interaction point, and
// Policy is the replayable non-interactive analyst.
package core

import (
	"fmt"
	"strings"

	"progconv/internal/analyzer"
	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/equiv"
	"progconv/internal/netstore"
	"progconv/internal/optimizer"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// Analyst answers the questions automation cannot: whether a qualified
// conversion (one that weakens strict I/O equivalence, like an accepted
// order change) should proceed.
type Analyst interface {
	// Decide returns true to accept the qualified conversion of the named
	// program despite the issue.
	Decide(program string, issue analyzer.Issue) bool
}

// Policy is the non-interactive analyst: fixed, documented decisions.
type Policy struct {
	// AcceptOrderChanges accepts conversions whose output order may
	// change (§5.2's "levels of successful conversion": the program is
	// converted, with a warning, rather than strictly equivalent).
	AcceptOrderChanges bool
}

// Decide implements Analyst.
func (p Policy) Decide(program string, issue analyzer.Issue) bool {
	if issue.Kind == analyzer.OrderDependence {
		return p.AcceptOrderChanges
	}
	return false
}

// Disposition classifies a program's conversion outcome.
type Disposition uint8

// The dispositions.
const (
	// Auto: converted fully automatically, strict equivalence expected.
	Auto Disposition = iota
	// Qualified: converted after the Analyst accepted a weaker
	// equivalence (order change).
	Qualified
	// Manual: routed to hand conversion.
	Manual
)

func (d Disposition) String() string {
	switch d {
	case Auto:
		return "auto"
	case Qualified:
		return "qualified"
	case Manual:
		return "manual"
	}
	return "?"
}

// Outcome is one program's conversion record.
type Outcome struct {
	Name          string
	Disposition   Disposition
	Issues        []analyzer.Issue
	Notes         []string
	Optimizations []optimizer.Optimization
	Converted     *dbprog.Program
	// Verified holds the equivalence check against the migrated data,
	// when the supervisor was given a database to verify with.
	Verified *equiv.Verdict
}

// Report is the supervisor's full record of one conversion run.
type Report struct {
	PlanDescription string
	Invertible      bool
	TargetSchema    *schema.Network
	TargetDB        *netstore.DB
	Outcomes        []Outcome
}

// Counts returns (auto, qualified, manual).
func (r *Report) Counts() (auto, qualified, manual int) {
	for _, o := range r.Outcomes {
		switch o.Disposition {
		case Auto:
			auto++
		case Qualified:
			qualified++
		case Manual:
			manual++
		}
	}
	return
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("CONVERSION PLAN\n")
	b.WriteString(r.PlanDescription)
	fmt.Fprintf(&b, "invertible: %v\n\n", r.Invertible)
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-24s %s", o.Name, o.Disposition)
		if o.Verified != nil {
			if o.Verified.Equal {
				b.WriteString("  [verified]")
			} else {
				fmt.Fprintf(&b, "  [DIVERGED: %s]", o.Verified.Diff())
			}
		}
		b.WriteString("\n")
		for _, i := range o.Issues {
			fmt.Fprintf(&b, "    ! %s\n", i)
		}
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "    ~ %s\n", n)
		}
		for _, op := range o.Optimizations {
			fmt.Fprintf(&b, "    * %s: %s\n", op.Rule, op.Note)
		}
	}
	auto, qualified, manual := r.Counts()
	fmt.Fprintf(&b, "\n%d auto, %d qualified, %d manual of %d programs\n",
		auto, qualified, manual, len(r.Outcomes))
	return b.String()
}

// Supervisor orchestrates a conversion.
type Supervisor struct {
	Analyst Analyst
	// Verify runs each converted program against the migrated database
	// and compares traces (skipped for programs with database-visible
	// writes when the analyst accepted an order change, since their runs
	// mutate state).
	Verify bool
}

// NewSupervisor returns a supervisor with the default strict policy.
func NewSupervisor() *Supervisor {
	return &Supervisor{Analyst: Policy{}, Verify: true}
}

// Run converts a database application system: it classifies the schema
// change (unless an explicit plan is given), restructures the data, and
// converts every program — "a database application system is converted
// when each program actually existing in the source system has been
// converted" (§1.1).
func (s *Supervisor) Run(src, dst *schema.Network, plan *xform.Plan,
	db *netstore.DB, progs []*dbprog.Program) (*Report, error) {
	if plan == nil {
		var err error
		plan, err = xform.Classify(src, dst)
		if err != nil {
			return nil, fmt.Errorf("core: conversion analyzer: %w", err)
		}
	}
	target, err := plan.ApplySchema(src)
	if err != nil {
		return nil, err
	}
	report := &Report{
		PlanDescription: plan.Describe(),
		Invertible:      plan.Invertible(),
		TargetSchema:    target,
	}
	if db != nil {
		migrated, err := plan.MigrateData(db)
		if err != nil {
			return nil, fmt.Errorf("core: data translation: %w", err)
		}
		report.TargetDB = migrated
	}

	for _, p := range progs {
		o := Outcome{Name: p.Name}
		res, err := convert.Convert(p, src, plan)
		if err != nil {
			return nil, fmt.Errorf("core: converting %s: %w", p.Name, err)
		}
		o.Issues = res.Issues
		o.Notes = res.Notes
		switch {
		case res.Auto:
			o.Disposition = Auto
			o.Converted = res.Program
		case res.Program != nil && s.analystAccepts(p.Name, res.Issues):
			o.Disposition = Qualified
			o.Converted = res.Program
		default:
			o.Disposition = Manual
		}
		if o.Converted != nil {
			opt, applied := optimizer.Optimize(o.Converted, target)
			o.Converted = opt
			o.Optimizations = applied
		}
		if s.Verify && db != nil && o.Disposition == Auto && o.Converted != nil {
			v := equiv.Check(
				p, dbprog.Config{Net: db.Clone()},
				o.Converted, dbprog.Config{Net: report.TargetDB.Clone()})
			o.Verified = &v
		}
		report.Outcomes = append(report.Outcomes, o)
	}
	return report, nil
}

// analystAccepts asks the analyst about every converter-raised issue; a
// qualified conversion needs every one accepted, and only order
// dependence is ever acceptable (anything else means the emitted text is
// not a correct program for the new schema).
func (s *Supervisor) analystAccepts(program string, issues []analyzer.Issue) bool {
	any := false
	for _, i := range issues {
		switch i.Kind {
		case analyzer.OrderDependence:
			if !s.Analyst.Decide(program, i) {
				return false
			}
			any = true
		case analyzer.ProcessFirst, analyzer.StatusCodeDependence:
			// Warnings; they do not gate the converted text.
		default:
			return false
		}
	}
	return any
}
