package core

import (
	"context"
	"fmt"
	"testing"

	"progconv/internal/obs"
	"progconv/internal/schema"
)

// TestDataPlaneDeterministicReports: the rendered report is byte-identical
// at parallelism 1 and 8, with the verify database's keyed indexes on and
// off — the data-plane fast path changes how FINDs are answered, never
// what they answer — and the Report.DataPlane counters are themselves
// deterministic per configuration at any parallelism.
func TestDataPlaneDeterministicReports(t *testing.T) {
	type result struct {
		text string
		dp   obs.DataPlane
	}
	run := func(par int, indexes bool) result {
		t.Helper()
		db := companyV1DB(t)
		db.SetIndexing(indexes)
		sup := NewSupervisor()
		sup.Parallelism = par
		report, err := sup.Run(context.Background(),
			schema.CompanyV1(), schema.CompanyV2(), nil, db, applicationSystem(t))
		if err != nil {
			t.Fatal(err)
		}
		return result{report.String(), report.DataPlane}
	}

	base := run(1, true)
	if base.dp.Zero() {
		t.Fatal("verified run recorded no data-plane activity")
	}
	for _, c := range []struct {
		par     int
		indexes bool
	}{{8, true}, {1, false}, {8, false}} {
		got := run(c.par, c.indexes)
		if got.text != base.text {
			t.Errorf("report at parallelism=%d indexes=%v differs from parallelism=1 indexes=true:\n%s\nvs\n%s",
				c.par, c.indexes, got.text, base.text)
		}
	}

	// The counters must agree across parallelism within one index setting.
	for _, indexes := range []bool{true, false} {
		t.Run(fmt.Sprintf("indexes=%v", indexes), func(t *testing.T) {
			serial := run(1, indexes)
			parallel := run(8, indexes)
			if serial.dp != parallel.dp {
				t.Errorf("data-plane counters differ across parallelism: serial %+v vs parallel %+v",
					serial.dp, parallel.dp)
			}
		})
	}

	// With the verify DB's indexes off, the source side of every check
	// scans; with them on, those same FINDs probe instead.
	plain := run(1, false)
	if plain.dp.IndexScans <= base.dp.IndexScans {
		t.Errorf("disabling indexes should shift FINDs to scans: indexed %+v vs plain %+v",
			base.dp, plain.dp)
	}
	if base.dp.IndexProbes <= plain.dp.IndexProbes {
		t.Errorf("enabling indexes should shift FINDs to probes: indexed %+v vs plain %+v",
			base.dp, plain.dp)
	}
}
