package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"progconv/internal/fault"
	"progconv/internal/schema"
)

func TestProbeParallelFailFastTimeout(t *testing.T) {
	progs := chaosCorpus(t)
	inj := fault.New(1,
		fault.Rule{Kind: fault.Delay, Prog: progs[10].Name, Stage: "analyze", Delay: 10 * time.Second},
	)
	for _, par := range []int{1, 8} {
		sup := &Supervisor{
			Analyst:       Policy{},
			Parallelism:   par,
			StageTimeout:  100 * time.Millisecond,
			FailurePolicy: FailFast,
		}
		ctx := fault.With(context.Background(), inj)
		_, err := sup.Run(ctx, schema.CompanyV1(), nil, planFigure(), nil, progs)
		t.Logf("parallelism=%d err=%v  Is(ErrFailureBudget)=%v  Is(ErrCanceled)=%v",
			par, err, errors.Is(err, ErrFailureBudget), errors.Is(err, ErrCanceled))
		if !errors.Is(err, ErrFailureBudget) {
			t.Errorf("parallelism=%d: want ErrFailureBudget, got %v", par, err)
		}
	}
}
