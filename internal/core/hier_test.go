package core

// Model-polymorphic supervisor tests: hierarchical runs are
// byte-deterministic across parallelism and cache temperature, and one
// batch mixes network and hierarchical jobs without the models
// bleeding into each other.

import (
	"context"
	"fmt"
	"testing"

	"progconv/internal/corpus"
	"progconv/internal/plancache"
	"progconv/internal/schema"
)

func imsEntry(t *testing.T) *corpus.HierEntry {
	t.Helper()
	entry, err := corpus.IMSReorder()
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

// TestHierRunByteIdentical: the hierarchical pipeline's report is
// byte-identical at parallelism 1 and 8, uncached, cache-cold, and
// cache-warm — the same invariant TestCachedRunByteIdentical pins for
// the network model.
func TestHierRunByteIdentical(t *testing.T) {
	entry := imsEntry(t)
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			run := func(sup *Supervisor) string {
				t.Helper()
				sup.Analyst = Policy{}
				sup.Verify = true
				sup.Parallelism = par
				report, err := sup.RunHier(context.Background(),
					entry.Source, entry.Target, nil, entry.Seed(), entry.Programs())
				if err != nil {
					t.Fatal(err)
				}
				if report.Model != ModelHierarchical {
					t.Errorf("report model = %q, want %q", report.Model, ModelHierarchical)
				}
				return report.String()
			}
			base := run(&Supervisor{})
			cache := plancache.New(8)
			cold := run(&Supervisor{Cache: cache})
			warm := run(&Supervisor{Cache: cache})
			if cold != base {
				t.Errorf("cold cached report differs from uncached:\n%s\nvs\n%s", cold, base)
			}
			if warm != base {
				t.Errorf("warm cached report differs from uncached:\n%s\nvs\n%s", warm, base)
			}
			s := cache.Stats()
			if s.PairMisses != 1 || s.PairHits < 1 {
				t.Errorf("pair stats = %+v", s)
			}
			if s.AnalysisHits == 0 || s.ConversionHits == 0 || s.CodegenHits == 0 {
				t.Errorf("warm hierarchical run hit no program memos: %+v", s)
			}
		})
	}
}

// TestHierRunDispositions pins the §2.2 command-substitution outcomes:
// the parent-targeted and child-targeted retrievals convert (and
// verify) automatically, the GNP sweep is manual.
func TestHierRunDispositions(t *testing.T) {
	entry := imsEntry(t)
	sup := &Supervisor{Analyst: Policy{}, Verify: true}
	report, err := sup.RunHier(context.Background(),
		entry.Source, entry.Target, nil, entry.Seed(), entry.Programs())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Disposition{"DEPTMGR": Auto, "EMPBYID": Auto, "TENURED": Manual}
	for _, o := range report.Outcomes {
		if d, ok := want[o.Name]; !ok || o.Disposition != d {
			t.Errorf("%s disposition = %v, want %v", o.Name, o.Disposition, want[o.Name])
		}
		if o.Audit.Model != ModelHierarchical {
			t.Errorf("%s audit model = %q", o.Name, o.Audit.Model)
		}
		if o.Disposition == Auto {
			if o.Verified == nil || !o.Verified.Equal {
				t.Errorf("%s: automatic conversion not verified equal: %+v", o.Name, o.Verified)
			}
		}
	}
	if report.TargetHierDB == nil || report.TargetHierarchy == nil {
		t.Error("report is missing the migrated hierarchy or its schema")
	}
}

// TestRunJobsMixedModels: one batch interleaves network and
// hierarchical jobs through one supervisor and one shared cache; every
// sub-report lands at its submission index and matches the
// single-model run of the same job byte for byte.
func TestRunJobsMixedModels(t *testing.T) {
	entry := imsEntry(t)
	newJobs := func() []Job {
		return []Job{
			{Src: schema.CompanyV1(), Dst: schema.CompanyV2(), DB: companyV1DB(t), Programs: applicationSystem(t)},
			{Spec: HierSpec{Src: entry.Source, Dst: entry.Target, DB: entry.Seed()}, Programs: entry.Programs()},
			{Spec: NetworkSpec{Src: schema.CompanyV1(), Dst: schema.CompanyV2(), DB: companyV1DB(t)}, Programs: applicationSystem(t)},
		}
	}
	for _, par := range []int{1, 8} {
		sup := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: par, Cache: plancache.New(8)}
		reports, err := sup.RunJobs(context.Background(), newJobs())
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 3 {
			t.Fatalf("got %d reports", len(reports))
		}
		wantModels := []string{ModelNetwork, ModelHierarchical, ModelNetwork}
		for i, m := range wantModels {
			if reports[i].Model != m {
				t.Errorf("parallelism %d: reports[%d].Model = %q, want %q", par, i, reports[i].Model, m)
			}
		}
		// Each sub-report matches its single-job reference run.
		netRef := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: par}
		wantNet, err := netRef.Run(context.Background(),
			schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(t), applicationSystem(t))
		if err != nil {
			t.Fatal(err)
		}
		hierRef := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: par}
		wantHier, err := hierRef.RunHier(context.Background(),
			entry.Source, entry.Target, nil, entry.Seed(), entry.Programs())
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []string{wantNet.String(), wantHier.String(), wantNet.String()} {
			if got := reports[i].String(); got != want {
				t.Errorf("parallelism %d: reports[%d] diverges from the single-model run:\n%s\nvs\n%s",
					par, i, got, want)
			}
		}
	}
}
