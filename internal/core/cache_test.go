package core

import (
	"context"
	"fmt"
	"testing"

	"progconv/internal/fingerprint"
	"progconv/internal/plancache"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// TestCachedRunByteIdentical: with a shared cache, a cold run, a warm
// run, and an uncached run produce byte-identical reports — at
// parallelism 1 and N.
func TestCachedRunByteIdentical(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			run := func(sup *Supervisor) string {
				t.Helper()
				sup.Analyst = Policy{}
				sup.Verify = true
				sup.Parallelism = par
				report, err := sup.Run(context.Background(),
					schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(t), applicationSystem(t))
				if err != nil {
					t.Fatal(err)
				}
				return report.String()
			}
			base := run(&Supervisor{})
			cache := plancache.New(8)
			cold := run(&Supervisor{Cache: cache})
			warm := run(&Supervisor{Cache: cache})
			if cold != base {
				t.Errorf("cold cached report differs from uncached:\n%s\nvs\n%s", cold, base)
			}
			if warm != base {
				t.Errorf("warm cached report differs from uncached:\n%s\nvs\n%s", warm, base)
			}
			s := cache.Stats()
			if s.PairMisses != 1 || s.PairHits < 1 {
				t.Errorf("pair stats = %+v", s)
			}
			if s.AnalysisHits == 0 || s.ConversionHits == 0 || s.CodegenHits == 0 {
				t.Errorf("warm run hit no program memos: %+v", s)
			}
		})
	}
}

// TestRunJobsMultiplePairs: one batch interleaves three distinct schema
// pairs; each sub-report lands at its job's submission index and matches
// the single-pair Run of the same job byte for byte.
func TestRunJobsMultiplePairs(t *testing.T) {
	newJobs := func() []Job {
		return []Job{
			{Src: schema.CompanyV1(), Dst: schema.CompanyV2(), DB: companyV1DB(t), Programs: applicationSystem(t)},
			{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
				xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
			}}, Programs: applicationSystem(t)},
			{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
				xform.RenameSet{Old: "DIV-EMP", New: "DIV-STAFF"},
			}}, Programs: applicationSystem(t)},
		}
	}
	for _, par := range []int{1, 8} {
		sup := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: par, Cache: plancache.New(8)}
		reports, err := sup.RunJobs(context.Background(), newJobs())
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 3 {
			t.Fatalf("got %d reports", len(reports))
		}
		for i, job := range newJobs() {
			single := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: par}
			want, err := single.Run(context.Background(), job.Src, job.Dst, job.Plan, job.DB, job.Programs)
			if err != nil {
				t.Fatal(err)
			}
			if reports[i].String() != want.String() {
				t.Errorf("parallelism %d, job %d: batch sub-report differs from single run:\n%s\nvs\n%s",
					par, i, reports[i], want)
			}
		}
	}
}

// TestRunJobsDeterministic: batched multi-pair reports are identical
// across parallelism levels.
func TestRunJobsDeterministic(t *testing.T) {
	jobs := func() []Job {
		return []Job{
			{Src: schema.CompanyV1(), Dst: schema.CompanyV2(), DB: companyV1DB(t), Programs: applicationSystem(t)},
			{Src: schema.CompanyV1(), Plan: planFigure(), Programs: applicationSystem(t)},
			{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
				xform.RenameField{Record: "DIV", Old: "DIV-LOC", New: "DIV-CITY"},
			}}, Programs: applicationSystem(t)},
		}
	}
	serial := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: 1, Cache: plancache.New(8)}
	a, err := serial.RunJobs(context.Background(), jobs())
	if err != nil {
		t.Fatal(err)
	}
	par := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: 8, Cache: plancache.New(8)}
	b, err := par.RunJobs(context.Background(), jobs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("job %d: serial and parallel sub-reports differ:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestAuditRecordsPairFingerprint: every outcome carries the pair's
// content key, and it matches what PreparePair derives for the job.
func TestAuditRecordsPairFingerprint(t *testing.T) {
	sup := NewSupervisor()
	want := string(fingerprint.PairKey(schema.CompanyV1(), schema.CompanyV2(), nil))
	pair, err := sup.PreparePair(context.Background(),
		NetworkSpec{Src: schema.CompanyV1(), Dst: schema.CompanyV2()})
	if err != nil {
		t.Fatal(err)
	}
	if string(pair.Key()) != want {
		t.Errorf("PreparePair key %q, want %q", pair.Key(), want)
	}
	report, err := sup.Run(context.Background(),
		schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(t), applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range report.Outcomes {
		if o.Audit.Pair != want {
			t.Errorf("%s: Audit.Pair = %q, want %q", o.Name, o.Audit.Pair, want)
		}
	}
}
