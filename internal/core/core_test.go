package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/obs"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func companyV1DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// applicationSystem is a small mixed program inventory.
func applicationSystem(t *testing.T) []*dbprog.Program {
	return []*dbprog.Program{
		parse(t, `
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`),
		parse(t, `
PROGRAM COUNT-SALES DIALECT NETWORK.
  LET N = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'SALES EMPLOYEES', N.
END PROGRAM.
`),
		parse(t, `
PROGRAM PRINT-ALL DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`),
		parse(t, `
PROGRAM INPUT-DRIVEN DIALECT NETWORK.
  ACCEPT MODE.
  IF MODE = 'W'
    STORE DIV.
  END-IF.
END PROGRAM.
`),
	}
}

func TestSupervisorEndToEnd(t *testing.T) {
	sup := NewSupervisor()
	db := companyV1DB(t)
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	auto, qualified, manual := report.Counts()
	// LIST-OLD and COUNT-SALES convert automatically; PRINT-ALL is
	// order-dependent (strict policy: manual); INPUT-DRIVEN is blocked.
	if auto != 2 || qualified != 0 || manual != 2 {
		t.Fatalf("counts = %d/%d/%d\n%s", auto, qualified, manual, report)
	}
	// Auto conversions verified equivalent against the migrated data.
	for _, o := range report.Outcomes {
		if o.Disposition == Auto {
			if o.Verified == nil || !o.Verified.Equal {
				t.Errorf("%s not verified: %+v", o.Name, o.Verified)
			}
		}
	}
	if report.TargetDB == nil || report.TargetDB.Count("DEPT") != 3 {
		t.Error("data not migrated")
	}
	text := report.String()
	for _, want := range []string{"introduce-intermediate", "auto", "manual", "[verified]"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestSupervisorAcceptingAnalyst(t *testing.T) {
	sup := &Supervisor{Analyst: Policy{AcceptOrderChanges: true}, Verify: true}
	db := companyV1DB(t)
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	auto, qualified, manual := report.Counts()
	if auto != 2 || qualified != 1 || manual != 1 {
		t.Fatalf("counts = %d/%d/%d\n%s", auto, qualified, manual, report)
	}
	// The qualified program produced real output against the new database
	// (same records, possibly different order).
	for _, o := range report.Outcomes {
		if o.Disposition != Qualified {
			continue
		}
		tr, err := dbprog.Run(o.Converted, dbprog.Config{Net: report.TargetDB.Clone()})
		if err != nil {
			t.Fatalf("qualified program run: %v", err)
		}
		if len(tr.Events) != 3 {
			t.Errorf("qualified output = %v", tr.Events)
		}
	}
}

func TestSupervisorExplicitPlanAndNoDB(t *testing.T) {
	sup := NewSupervisor()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if report.TargetDB != nil {
		t.Error("no database given, none expected back")
	}
	if report.Outcomes[0].Verified != nil {
		t.Error("verification needs a database")
	}
	if !report.Invertible {
		t.Error("figure plan is invertible")
	}
}

func TestSupervisorClassifyErrorSurfaces(t *testing.T) {
	weird := schema.CompanyV1()
	weird.Records = append(weird.Records, &schema.RecordType{Name: "ALIEN",
		Fields: []schema.Field{{Name: "X", Kind: value.Int}}})
	weird.Sets = append(weird.Sets, &schema.SetType{Name: "ALL-ALIEN",
		Owner: schema.SystemOwner, Member: "ALIEN"})
	sup := NewSupervisor()
	if _, err := sup.Run(context.Background(), schema.CompanyV1(), weird, nil, nil, nil); err == nil {
		t.Error("unclassifiable change should error")
	}
}

func TestDispositionString(t *testing.T) {
	for d, w := range map[Disposition]string{Auto: "auto", Qualified: "qualified",
		Manual: "manual", Disposition(9): "disposition(9)"} {
		if d.String() != w {
			t.Errorf("%d = %q", d, d.String())
		}
	}
}

func TestDispositionTextMarshalling(t *testing.T) {
	for _, d := range []Disposition{Auto, Qualified, Manual} {
		text, err := d.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Disposition
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Errorf("round trip %v → %s → %v", d, text, back)
		}
	}
	if _, err := Disposition(9).MarshalText(); err != nil {
		t.Errorf("unknown disposition must still marshal: %v", err)
	}
	var d Disposition
	if err := d.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("unknown text must not unmarshal")
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := NewSupervisor()
	_, err := sup.Run(ctx, schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestParallelRunMatchesSerial(t *testing.T) {
	progs := applicationSystem(t)
	serial := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: 1}
	par := &Supervisor{Analyst: Policy{}, Verify: true, Parallelism: 4}
	a, err := serial.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(t), progs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(t), progs)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("serial and parallel reports differ:\n%s\nvs\n%s", a, b)
	}
}

func TestMetricsRecorded(t *testing.T) {
	sup := NewSupervisor()
	sup.Metrics = obs.NewRecorder()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil,
		companyV1DB(t), applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if report.Metrics == nil {
		t.Fatal("metrics recorder given, none snapshotted")
	}
	an := report.Metrics.Stage(obs.StageAnalyze)
	if an.Count != int64(len(report.Outcomes)) {
		t.Errorf("analyze spans = %d, want %d", an.Count, len(report.Outcomes))
	}
	if report.Metrics.Stage(obs.StageVerify).Count == 0 {
		t.Error("verified run recorded no verify spans")
	}
	// The generate stage produced real program text for converted outcomes.
	for _, o := range report.Outcomes {
		if o.Converted != nil && o.Generated == "" {
			t.Errorf("%s: converted but no generated text", o.Name)
		}
	}
}

// TestAuditTrail: every outcome carries the reason it landed at its
// disposition, with hazards, analyst decisions and the implicated plan
// step preserved.
func TestAuditTrail(t *testing.T) {
	sup := NewSupervisor()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil,
		companyV1DB(t), applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Outcome{}
	for _, o := range report.Outcomes {
		if o.Audit.Reason == "" {
			t.Errorf("%s: empty audit reason", o.Name)
		}
		byName[o.Name] = o
	}
	if a := byName["LIST-OLD"].Audit; a.Reason != "every statement matched a rewrite rule" ||
		len(a.Hazards) != 0 || len(a.Decisions) != 0 {
		t.Errorf("LIST-OLD audit = %+v", a)
	}
	// PRINT-ALL's order dependence: the strict analyst declined, the
	// hazard and the responsible plan step are on record.
	pa := byName["PRINT-ALL"].Audit
	if pa.Reason != "analyst declined the order-dependence finding" {
		t.Errorf("PRINT-ALL reason = %q", pa.Reason)
	}
	if len(pa.Hazards) == 0 || pa.Hazards[0] != "order-dependence" {
		t.Errorf("PRINT-ALL hazards = %v", pa.Hazards)
	}
	if pa.PlanStep != "introduce-intermediate" {
		t.Errorf("PRINT-ALL plan step = %q", pa.PlanStep)
	}
	if len(pa.Decisions) != 1 || pa.Decisions[0].Accepted ||
		pa.Decisions[0].Issue.Kind != analyzer.OrderDependence {
		t.Errorf("PRINT-ALL decisions = %+v", pa.Decisions)
	}
	// INPUT-DRIVEN is blocked before conversion (run-time variability).
	if r := byName["INPUT-DRIVEN"].Audit.Reason; r != "a blocking hazard stopped conversion" {
		t.Errorf("INPUT-DRIVEN reason = %q", r)
	}

	// With an accepting analyst, the qualified path records its reason.
	sup = &Supervisor{Analyst: Policy{AcceptOrderChanges: true}, Verify: false}
	report, err = sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil,
		nil, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range report.Outcomes {
		if o.Name != "PRINT-ALL" {
			continue
		}
		if o.Disposition != Qualified || o.Audit.Reason != "analyst accepted a weaker equivalence" {
			t.Errorf("accepted PRINT-ALL audit = %v %+v", o.Disposition, o.Audit)
		}
		if len(o.Audit.Decisions) != 1 || !o.Audit.Decisions[0].Accepted {
			t.Errorf("accepted PRINT-ALL decisions = %+v", o.Audit.Decisions)
		}
	}
}

// TestEventLogEmitted: a supervisor with an event sink emits the full
// per-program trail — stage brackets, hazards, rewrites, decisions,
// verification verdicts and one closing outcome per program.
func TestEventLogEmitted(t *testing.T) {
	ring := obs.NewRingSink(4096)
	sup := NewSupervisor()
	sup.Events = ring
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil,
		companyV1DB(t), applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[obs.EventKind]int{}
	outcomes := map[string]string{}
	for _, ev := range ring.Events() {
		byKind[ev.Kind]++
		if ev.Kind == obs.EvOutcome {
			outcomes[ev.Prog] = ev.Label
		}
	}
	if byKind[obs.EvOutcome] != len(report.Outcomes) {
		t.Errorf("outcome events = %d, want %d", byKind[obs.EvOutcome], len(report.Outcomes))
	}
	for _, o := range report.Outcomes {
		if outcomes[o.Name] != o.Disposition.String() {
			t.Errorf("%s outcome event label = %q, want %q",
				o.Name, outcomes[o.Name], o.Disposition)
		}
	}
	if byKind[obs.EvStageStart] == 0 || byKind[obs.EvStageStart] != byKind[obs.EvStageEnd] {
		t.Errorf("stage events unbalanced: %d starts, %d ends",
			byKind[obs.EvStageStart], byKind[obs.EvStageEnd])
	}
	for _, kind := range []obs.EventKind{obs.EvHazard, obs.EvRewrite, obs.EvDecision, obs.EvVerify} {
		if byKind[kind] == 0 {
			t.Errorf("no %v events from the mixed inventory", kind)
		}
	}
	// The report itself is unchanged by observation (byte-compat pin).
	bare, err := NewSupervisor().Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(),
		nil, companyV1DB(t), applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if report.String() != bare.String() {
		t.Error("observed and unobserved reports differ")
	}
}

func TestPolicyDecide(t *testing.T) {
	p := Policy{AcceptOrderChanges: true}
	if !p.Decide("X", analyzer.Issue{Kind: analyzer.OrderDependence}) {
		t.Error("order change should be accepted")
	}
	if p.Decide("X", analyzer.Issue{Kind: analyzer.RunTimeVariability}) {
		t.Error("run-time variability never accepted")
	}
}

func planFigure() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}
