package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

// fusiblePlanAndTarget returns an all-fusible four-step plan over
// CompanyV1 and the schema it produces — the classified V1→V2 plan is
// the structural intermediate step, which migrates serially, so the
// sharded rebuild needs an explicit mapping plan to engage.
func fusiblePlanAndTarget(t *testing.T) (*xform.Plan, *schema.Network) {
	t.Helper()
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		xform.RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		xform.AddField{Record: "EMPLOYEE", Field: "STATUS", Kind: value.String, Default: value.Str("ACTIVE")},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-EMPLOYEE"},
	}}
	dst := schema.CompanyV1()
	for _, step := range plan.Steps {
		var err error
		if dst, err = step.ApplySchema(dst); err != nil {
			t.Fatal(err)
		}
	}
	return plan, dst
}

// largeCompanyDB bulk-populates CompanyV1 far past the shard threshold,
// so the sharded migration genuinely fans out and has enough work for a
// stage deadline to interrupt.
func largeCompanyDB(t *testing.T, divisions, empsPerDiv int) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	for d := 0; d < divisions; d++ {
		did, err := db.StoreWith("DIV", value.FromPairs(
			"DIV-NAME", fmt.Sprintf("DIV-%03d", d),
			"DIV-LOC", fmt.Sprintf("L%d", d%7)),
			map[string]netstore.RecordID{"ALL-DIV": netstore.OwnerSystem})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < empsPerDiv; e++ {
			if _, err := db.StoreWith("EMP", value.FromPairs(
				"EMP-NAME", fmt.Sprintf("E-%03d-%04d", d, e),
				"DEPT-NAME", fmt.Sprintf("D%d", e%5),
				"AGE", 20+(d+e)%45),
				map[string]netstore.RecordID{"DIV-EMP": did}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestMigrationParallelismDeterministicReports: the rendered report is
// byte-identical whether the data migration runs serial or sharded
// eight ways — MigrationParallelism changes wall-clock, never output —
// and the data-plane counters account for the fan-out.
func TestMigrationParallelismDeterministicReports(t *testing.T) {
	plan, dst := fusiblePlanAndTarget(t)
	db := largeCompanyDB(t, 3, 60) // 183 records: the EMP pass spans shards
	run := func(par int) *Report {
		t.Helper()
		sup := NewSupervisor()
		sup.MigrationParallelism = par
		report, err := sup.Run(context.Background(),
			schema.CompanyV1(), dst, plan, db, applicationSystem(t))
		if err != nil {
			t.Fatal(err)
		}
		return report
	}

	serial := run(1)
	if serial.DataPlane.MigrationShards < 1 || serial.DataPlane.BulkLoadedRecords < 1 {
		t.Fatalf("serial run recorded no migration activity: %+v", serial.DataPlane)
	}
	for _, par := range []int{2, 8} {
		got := run(par)
		if got.String() != serial.String() {
			t.Errorf("report at migration parallelism %d differs from serial:\n%s\nvs\n%s",
				par, got.String(), serial.String())
		}
		if got.DataPlane.BulkLoadedRecords != serial.DataPlane.BulkLoadedRecords {
			t.Errorf("bulk-loaded records at parallelism %d = %d, serial %d",
				par, got.DataPlane.BulkLoadedRecords, serial.DataPlane.BulkLoadedRecords)
		}
		if got.DataPlane.MigrationShards < serial.DataPlane.MigrationShards {
			t.Errorf("shards at parallelism %d = %d, below serial %d",
				par, got.DataPlane.MigrationShards, serial.DataPlane.MigrationShards)
		}
	}
}

// TestMigrationHonorsStageTimeout is the regression test for the
// unbounded-migration bug: the rebuild loops used to run to completion
// no matter what the supervisor's stage deadline said. With a deadline
// that cannot possibly cover a six-figure record count, the run must
// fail promptly with the deadline error, at any shard count.
func TestMigrationHonorsStageTimeout(t *testing.T) {
	plan, dst := fusiblePlanAndTarget(t)
	db := largeCompanyDB(t, 40, 300) // 12040 records
	for _, par := range []int{1, 8} {
		sup := NewSupervisor()
		sup.MigrationParallelism = par
		sup.StageTimeout = time.Nanosecond
		_, err := sup.Run(context.Background(),
			schema.CompanyV1(), dst, plan, db, applicationSystem(t))
		if err == nil {
			t.Fatalf("par %d: migration outran a 1ns stage deadline", par)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("par %d: err = %v, want context.DeadlineExceeded in the chain", par, err)
		}
	}
}
