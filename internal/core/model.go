package core

import (
	"context"

	"progconv/internal/analyzer"
	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/equiv"
	"progconv/internal/fingerprint"
	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/optimizer"
	"progconv/internal/plancache"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// The data models the supervisor can convert between. These are the
// names audits, reports, and the wire schema carry.
const (
	ModelNetwork      = "network"
	ModelHierarchical = "hierarchical"
)

// PairSpec describes one conversion pair in some data model: the
// source and target schemas, an optional explicit plan, and an optional
// database to migrate and verify against. Specs are what jobs carry;
// preparing a spec yields the ModelPair the pipeline runs on. The model
// catalogue is closed — NetworkSpec and HierSpec are the
// implementations — so the preparation hook is unexported.
type PairSpec interface {
	// Model names the spec's data model (ModelNetwork, ModelHierarchical).
	Model() string
	prepare(ctx context.Context, s *Supervisor) (ModelPair, error)
}

// ModelPair is one job's model-polymorphic pipeline: the pair-scoped
// artifacts (classified plan, target schema, rewrite rules — cached
// per content key) bound to that job's database. The supervisor drives
// every stage through this interface; everything model-specific —
// which analyzer schema, which converter, which engine the
// equivalence checker runs — lives behind it.
//
// A ModelPair is cheap and per-job: the shared cache holds only the
// immutable pair context, never the job's (mutated, migrated)
// databases.
type ModelPair interface {
	// Model names the data model, as carried in audits and reports.
	Model() string
	// Key is the content-addressed pair key; key spaces of different
	// models are disjoint by fingerprint domain separation.
	Key() fingerprint.Hash
	// Description and Invertible are the plan's report-facing summary.
	Description() string
	Invertible() bool

	// attach sets the report's model-specific schema fields.
	attach(r *Report)
	// migrate restructures the job's database through the plan (a no-op
	// without one), populating the report's target-database and
	// data-plane fields and recording the index-stat baselines foldStats
	// deltas against. ctx carries the stage budget and s the shard
	// parallelism; the result is identical at any parallelism.
	migrate(ctx context.Context, s *Supervisor, r *Report) error
	// foldStats folds the run's data-plane activity into the report
	// after the batch drains.
	foldStats(r *Report)

	// The per-program stage bodies. cache may be nil (cold run); ph is
	// the program's content hash, computed only when cache is non-nil.
	analyze(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, p *dbprog.Program) *analyzer.Abstract
	convertProg(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, abs *analyzer.Abstract) (*convert.Result, error)
	// optimize refines a converted program; generated is non-empty only
	// when a cache hit already carries the rendering (the generate stage
	// then reuses it instead of re-formatting).
	optimize(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, name string, converted *dbprog.Program) (opt *dbprog.Program, applied []optimizer.Optimization, generated string)
	// verifiable reports whether a database was supplied to verify
	// automatic conversions against.
	verifiable() bool
	// verify runs source and converted programs against the original and
	// migrated databases and compares traces.
	verify(ctx context.Context, src, converted *dbprog.Program) equiv.Verdict
}

// NetworkSpec is the CODASYL network model's PairSpec — the workload
// shape every pre-model caller of the supervisor submitted.
type NetworkSpec struct {
	// Src is the source schema and Dst the target; Dst may be nil when
	// an explicit Plan is given.
	Src, Dst *schema.Network
	// Plan, when non-nil, overrides classification of the schema diff.
	Plan *xform.Plan
	// DB, when non-nil, is migrated through the plan and used to verify
	// automatic conversions.
	DB *netstore.DB
}

// Model implements PairSpec.
func (NetworkSpec) Model() string { return ModelNetwork }

func (sp NetworkSpec) prepare(ctx context.Context, s *Supervisor) (ModelPair, error) {
	var pair *plancache.Pair
	var err error
	if s.Cache != nil {
		pair, err = s.Cache.Pair(ctx, sp.Src, sp.Dst, sp.Plan)
	} else {
		pair, err = plancache.BuildPair(sp.Src, sp.Dst, sp.Plan)
	}
	if err != nil {
		return nil, err
	}
	return &networkPair{pair: pair, srcDB: sp.DB}, nil
}

// networkPair is the network model's ModelPair: the cached pair context
// plus this job's databases and index-stat baselines.
type networkPair struct {
	pair            *plancache.Pair
	srcDB, targetDB *netstore.DB

	srcProbes, srcScans int64
	tgtProbes, tgtScans int64
}

func (np *networkPair) Model() string         { return ModelNetwork }
func (np *networkPair) Key() fingerprint.Hash { return np.pair.Key }
func (np *networkPair) Description() string   { return np.pair.Description }
func (np *networkPair) Invertible() bool      { return np.pair.Invertible }
func (np *networkPair) attach(r *Report)      { r.TargetSchema = np.pair.Target }

func (np *networkPair) migrate(ctx context.Context, s *Supervisor, r *Report) error {
	if np.srcDB == nil {
		return nil
	}
	migrated, stats, err := np.pair.Plan.Migrate(ctx, np.srcDB, xform.MigrateOptions{Parallelism: s.MigrationParallelism})
	if err != nil {
		return err
	}
	np.targetDB = migrated
	r.TargetDB = migrated
	r.DataPlane.FusedSteps = int64(stats.FusedSteps)
	r.DataPlane.StepwiseSteps = int64(stats.StepwiseSteps)
	r.DataPlane.MigrationShards = int64(stats.Shards)
	r.DataPlane.BulkLoadedRecords = int64(stats.BulkRecords)
	np.srcProbes, np.srcScans = np.srcDB.IndexStatsOf().Snapshot()
	np.tgtProbes, np.tgtScans = migrated.IndexStatsOf().Snapshot()
	return nil
}

func (np *networkPair) foldStats(r *Report) {
	// Clones used by the verify stage share their origin database's
	// counters, so the deltas cover every FIND the batch issued. The
	// work per program is identical at any parallelism, so the totals
	// are deterministic.
	if np.srcDB == nil {
		return
	}
	p1, s1 := np.srcDB.IndexStatsOf().Snapshot()
	r.DataPlane.IndexProbes += p1 - np.srcProbes
	r.DataPlane.IndexScans += s1 - np.srcScans
	if np.targetDB != nil {
		p1, s1 = np.targetDB.IndexStatsOf().Snapshot()
		r.DataPlane.IndexProbes += p1 - np.tgtProbes
		r.DataPlane.IndexScans += s1 - np.tgtScans
	}
}

func (np *networkPair) analyze(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, p *dbprog.Program) *analyzer.Abstract {
	if cache != nil {
		return cache.Analyze(ctx, ph, p, np.pair)
	}
	return analyzer.Analyze(ctx, p, np.pair.Src)
}

func (np *networkPair) convertProg(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, abs *analyzer.Abstract) (*convert.Result, error) {
	if cache != nil {
		return cache.Convert(ctx, ph, abs, np.pair)
	}
	return convert.ConvertPrepared(ctx, abs, np.pair.Src, np.pair.Rewriters)
}

func (np *networkPair) optimize(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, name string, converted *dbprog.Program) (*dbprog.Program, []optimizer.Optimization, string) {
	if cache != nil {
		// One memo covers optimize and generate; the rendering is kept
		// aside for the generate stage.
		return cache.Codegen(ctx, ph, name, converted, np.pair)
	}
	opt, applied := optimizer.OptimizeWith(ctx, converted, np.pair.Target, np.pair.Cost)
	return opt, applied, ""
}

func (np *networkPair) verifiable() bool { return np.srcDB != nil }

func (np *networkPair) verify(ctx context.Context, src, converted *dbprog.Program) equiv.Verdict {
	return equiv.Check(ctx,
		src, dbprog.Config{Net: np.srcDB.Clone()},
		converted, dbprog.Config{Net: np.targetDB.Clone()})
}

// HierSpec is the hierarchical (IMS / DL/I) model's PairSpec.
type HierSpec struct {
	// Src is the source hierarchy and Dst the target; Dst may be nil
	// when an explicit Plan is given.
	Src, Dst *schema.Hierarchy
	// Plan, when non-nil, overrides classification of the hierarchy diff.
	Plan *xform.HierPlan
	// DB, when non-nil, is migrated through the plan and used to verify
	// automatic conversions.
	DB *hierstore.DB
}

// Model implements PairSpec.
func (HierSpec) Model() string { return ModelHierarchical }

func (sp HierSpec) prepare(ctx context.Context, s *Supervisor) (ModelPair, error) {
	var pair *plancache.HierPair
	var err error
	if s.Cache != nil {
		pair, err = s.Cache.HierPair(ctx, sp.Src, sp.Dst, sp.Plan)
	} else {
		pair, err = plancache.BuildHierPair(sp.Src, sp.Dst, sp.Plan)
	}
	if err != nil {
		return nil, err
	}
	return &hierPair{pair: pair, srcDB: sp.DB}, nil
}

// hierPair is the hierarchical model's ModelPair.
type hierPair struct {
	pair            *plancache.HierPair
	srcDB, targetDB *hierstore.DB
}

func (hp *hierPair) Model() string         { return ModelHierarchical }
func (hp *hierPair) Key() fingerprint.Hash { return hp.pair.Key }
func (hp *hierPair) Description() string   { return hp.pair.Description }
func (hp *hierPair) Invertible() bool      { return hp.pair.Invertible }
func (hp *hierPair) attach(r *Report)      { r.TargetHierarchy = hp.pair.Target }

func (hp *hierPair) migrate(ctx context.Context, s *Supervisor, r *Report) error {
	if hp.srcDB == nil {
		return nil
	}
	migrated, warnings, stats, err := hp.pair.Plan.Migrate(ctx, hp.srcDB, xform.MigrateOptions{Parallelism: s.MigrationParallelism})
	if err != nil {
		return err
	}
	hp.targetDB = migrated
	r.TargetHierDB = migrated
	r.MigrationWarnings = warnings
	r.DataPlane.StepwiseSteps = int64(len(hp.pair.Plan.Steps))
	r.DataPlane.MigrationShards = int64(stats.Shards)
	return nil
}

// foldStats is a no-op: the hierarchical store has no index plane.
func (hp *hierPair) foldStats(r *Report) {}

func (hp *hierPair) analyze(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, p *dbprog.Program) *analyzer.Abstract {
	if cache != nil {
		return cache.AnalyzeHier(ctx, ph, p, hp.pair)
	}
	return analyzer.Analyze(ctx, p, nil)
}

func (hp *hierPair) convertProg(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, abs *analyzer.Abstract) (*convert.Result, error) {
	if cache != nil {
		return cache.ConvertHier(ctx, ph, abs, hp.pair)
	}
	return convert.ConvertHierAnalyzed(ctx, abs, hp.pair.Src, hp.pair.Plan)
}

func (hp *hierPair) optimize(ctx context.Context, cache *plancache.Cache, ph fingerprint.Hash, name string, converted *dbprog.Program) (*dbprog.Program, []optimizer.Optimization, string) {
	// The hierarchical optimizer is an identity pass; the memo carries
	// the generated rendering only.
	if cache != nil {
		opt, gen := cache.CodegenHier(ctx, ph, name, converted, hp.pair)
		return opt, nil, gen
	}
	return converted, nil, ""
}

func (hp *hierPair) verifiable() bool { return hp.srcDB != nil }

func (hp *hierPair) verify(ctx context.Context, src, converted *dbprog.Program) equiv.Verdict {
	return equiv.Check(ctx,
		src, dbprog.Config{Hier: hp.srcDB.Clone()},
		converted, dbprog.Config{Hier: hp.targetDB.Clone()})
}
