package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"progconv/internal/analyzer"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/fault"
	"progconv/internal/obs"
	"progconv/internal/schema"
)

// instantSleep is the injected sleeper: retry chains cost no wall time.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// chaosCorpus generates the 50-program inventory the chaos acceptance
// test runs against.
func chaosCorpus(t *testing.T) []*dbprog.Program {
	t.Helper()
	p := corpus.Profile{
		Seed:      42,
		Divisions: 2, DeptsPerDiv: 2, EmpsPerDept: 2,
		Programs:               50,
		RateRunTimeVariability: 0.08,
		RateOrderDependence:    0.12,
		RateViewUpdate:         0.06,
	}
	members, err := corpus.Programs(p)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	return progs
}

// TestChaosInjectedFaultsAtScale is the ISSUE's chaos acceptance
// criterion: a 50-program batch at parallelism 8 absorbs an injected
// panic, a stage timeout, and two transient errors; the run completes,
// the report is byte-identical to a serial run, the affected programs
// carry the evidence in their audit trails, and the Tally's fault
// counters reconcile exactly against the injected plan.
func TestChaosInjectedFaultsAtScale(t *testing.T) {
	progs := chaosCorpus(t)
	const stageBudget = 400 * time.Millisecond
	panicProg, delayProg := progs[3].Name, progs[10].Name
	transientA, transientB := progs[20].Name, progs[30].Name
	inj := fault.New(1,
		fault.Rule{Kind: fault.Panic, Prog: panicProg, Stage: "convert"},
		fault.Rule{Kind: fault.Delay, Prog: delayProg, Stage: "analyze", Delay: 10 * time.Second},
		fault.Rule{Kind: fault.Transient, Prog: transientA, Stage: "analyze"},
		fault.Rule{Kind: fault.Transient, Prog: transientB, Stage: "analyze"},
	)

	runAt := func(parallelism int) (*Report, *obs.Tally) {
		t.Helper()
		tally := obs.NewTally()
		sup := &Supervisor{
			Analyst:       Policy{},
			Parallelism:   parallelism,
			Events:        tally,
			StageTimeout:  stageBudget,
			Retries:       2,
			Sleep:         instantSleep,
			FailurePolicy: CollectErrors,
		}
		ctx := fault.With(context.Background(), inj)
		report, err := sup.Run(ctx, schema.CompanyV1(), nil, planFigure(), nil, progs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return report, tally
	}

	serial, serialTally := runAt(1)
	parallel, parallelTally := runAt(8)

	if s, p := serial.String(), parallel.String(); s != p {
		t.Fatalf("chaos report not byte-identical across parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}

	byName := map[string]*Outcome{}
	for i := range parallel.Outcomes {
		byName[parallel.Outcomes[i].Name] = &parallel.Outcomes[i]
	}
	if o := byName[panicProg]; o.Disposition != Failed ||
		o.Audit.Failure == nil || o.Audit.Failure.Kind != FailPanic {
		t.Errorf("%s = %+v, want Failed with panic evidence", panicProg, o)
	} else {
		wantMsg := fmt.Sprintf("injected panic at %s/convert attempt 0", panicProg)
		if o.Audit.Failure.Value != wantMsg {
			t.Errorf("panic value = %q, want %q", o.Audit.Failure.Value, wantMsg)
		}
		if o.Audit.Failure.Stack == "" {
			t.Error("panic failure lost its stack trace")
		}
	}
	if o := byName[delayProg]; o.Disposition != Failed ||
		o.Audit.Failure == nil || o.Audit.Failure.Kind != FailTimeout {
		t.Errorf("%s = %+v, want Failed with timeout evidence", delayProg, o)
	} else if o.Audit.Failure.Scope != "stage" || o.Audit.Failure.Budget != stageBudget {
		t.Errorf("timeout evidence = %+v, want stage scope at %s", o.Audit.Failure, stageBudget)
	}
	for _, name := range []string{transientA, transientB} {
		o := byName[name]
		if o.Disposition == Failed {
			t.Errorf("%s failed; a transient error with retry allowance must recover", name)
		}
		if len(o.Audit.Retries) != 1 || o.Audit.Retries[0].Stage != "analyze" {
			t.Errorf("%s retries = %+v, want one analyze retry", name, o.Audit.Retries)
		}
	}
	if got := parallel.FailedCount(); got != 2 {
		t.Errorf("failed count = %d, want 2", got)
	}
	if !strings.Contains(parallel.String(), "2 failed of 50 programs") {
		t.Errorf("summary missing failed count:\n%s", parallel.String())
	}

	// The Tally reconciles exactly against the injected fault plan, at
	// either parallelism.
	want := map[string]int64{"panic": 1, "timeout": 1, "retry": 2}
	for which, tally := range map[string]*obs.Tally{"serial": serialTally, "parallel": parallelTally} {
		got := tally.Faults()
		if len(got) != len(want) {
			t.Errorf("%s faults = %v, want %v", which, got, want)
		}
		for kind, n := range want {
			if got[kind] != n {
				t.Errorf("%s faults[%q] = %d, want %d", which, kind, got[kind], n)
			}
		}
	}
}

// TestChaosRepeatedRunsIdentical: the injector is a pure function of
// its rules and site, so re-running the same chaos plan gives the same
// report bytes — the property that makes chaos failures replayable.
func TestChaosRepeatedRunsIdentical(t *testing.T) {
	progs := chaosCorpus(t)
	run := func() string {
		inj := fault.New(9,
			fault.Rule{Kind: fault.Transient, Prog: "P-0*", Stage: "convert", Rate: 0.4},
		)
		sup := &Supervisor{Analyst: Policy{}, Parallelism: 4,
			Retries: 1, Sleep: instantSleep, FailurePolicy: CollectErrors}
		report, err := sup.Run(fault.With(context.Background(), inj),
			schema.CompanyV1(), nil, planFigure(), nil, progs)
		if err != nil {
			t.Fatal(err)
		}
		return report.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
}

// TestResiliencePanicIsolatedFailFast: under the default policy a
// panicking stage aborts the batch with ErrFailureBudget — but as an
// error, never as a crash.
func TestResiliencePanicIsolatedFailFast(t *testing.T) {
	sup := NewSupervisor()
	sup.Verify = false
	inj := fault.New(1, fault.Rule{Kind: fault.Panic, Prog: "LIST-OLD", Stage: "analyze"})
	report, err := sup.Run(fault.With(context.Background(), inj),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t))
	if report != nil {
		t.Error("aborted run still returned a report")
	}
	if !errors.Is(err, ErrFailureBudget) {
		t.Fatalf("err = %v, want ErrFailureBudget", err)
	}
	var f *Failure
	if !errors.As(err, &f) || f.Kind != FailPanic || f.Stage != "analyze" {
		t.Errorf("failure evidence = %+v", f)
	}
	if !strings.Contains(err.Error(), "LIST-OLD") {
		t.Errorf("error does not name the program: %v", err)
	}
}

// TestResilienceTransientRetrySucceeds: a stage failing twice with
// Transient errors recovers on the third attempt; the audit trail and
// the injected sleeper both record the deterministic backoff ladder.
func TestResilienceTransientRetrySucceeds(t *testing.T) {
	var slept []time.Duration
	sup := &Supervisor{Analyst: Policy{}, Retries: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		}}
	inj := fault.New(1, fault.Rule{Kind: fault.Transient, Prog: "LIST-OLD", Stage: "convert", Count: 2})
	report, err := sup.Run(fault.With(context.Background(), inj),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	o := report.Outcomes[0]
	if o.Disposition != Auto {
		t.Errorf("disposition = %s, want auto after retries", o.Disposition)
	}
	wantBackoffs := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(o.Audit.Retries) != 2 {
		t.Fatalf("retries = %+v, want 2", o.Audit.Retries)
	}
	for i, rt := range o.Audit.Retries {
		if rt.Stage != "convert" || rt.Attempt != i+1 || rt.Backoff != wantBackoffs[i] {
			t.Errorf("retry %d = %+v", i, rt)
		}
		if !strings.Contains(rt.Err, "injected transient") {
			t.Errorf("retry %d error = %q", i, rt.Err)
		}
	}
	if len(slept) != 2 || slept[0] != wantBackoffs[0] || slept[1] != wantBackoffs[1] {
		t.Errorf("sleeper saw %v, want %v", slept, wantBackoffs)
	}
	if !strings.Contains(report.String(), "^ retry 1 of convert after 50ms") {
		t.Errorf("report missing retry evidence:\n%s", report)
	}
}

// TestResilienceRetriesExhausted: a fault outlasting the retry
// allowance lands as FailError carrying the attempt count and the
// transient classification.
func TestResilienceRetriesExhausted(t *testing.T) {
	sup := &Supervisor{Analyst: Policy{}, Retries: 2, Sleep: instantSleep}
	inj := fault.New(1, fault.Rule{Kind: fault.Transient, Prog: "LIST-OLD", Stage: "convert", Count: 99})
	_, err := sup.Run(fault.With(context.Background(), inj),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t)[:1])
	if !errors.Is(err, ErrFailureBudget) || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrFailureBudget wrapping ErrTransient", err)
	}
	var f *Failure
	if !errors.As(err, &f) || f.Kind != FailError || f.Attempts != 3 {
		t.Errorf("failure = %+v, want FailError after 3 attempts", f)
	}
}

// TestResilienceFailurePolicyBudget: Budget(n) tolerates n-1 failures
// and aborts on the nth; one more of headroom lets the batch complete.
func TestResilienceFailurePolicyBudget(t *testing.T) {
	progs := applicationSystem(t)
	inj := fault.New(1,
		fault.Rule{Kind: fault.Panic, Prog: "LIST-OLD", Stage: "analyze"},
		fault.Rule{Kind: fault.Panic, Prog: "PRINT-ALL", Stage: "analyze"},
	)
	run := func(p FailurePolicy) (*Report, error) {
		sup := &Supervisor{Analyst: Policy{}, Parallelism: 1, FailurePolicy: p}
		return sup.Run(fault.With(context.Background(), inj),
			schema.CompanyV1(), nil, planFigure(), nil, progs)
	}
	if _, err := run(Budget(2)); !errors.Is(err, ErrFailureBudget) {
		t.Errorf("Budget(2) with 2 failures: err = %v, want ErrFailureBudget", err)
	}
	report, err := run(Budget(3))
	if err != nil {
		t.Fatalf("Budget(3) with 2 failures: %v", err)
	}
	if report.FailedCount() != 2 {
		t.Errorf("failed = %d, want 2", report.FailedCount())
	}
	if got := Budget(0); got != FailurePolicy(Budget(1)) {
		t.Errorf("Budget(0) = %v, want fail-fast", got)
	}
	for p, want := range map[FailurePolicy]string{
		FailFast: "fail-fast", CollectErrors: "collect-errors", Budget(4): "budget(4)",
	} {
		if p.String() != want {
			t.Errorf("%#v.String() = %q, want %q", p, p.String(), want)
		}
	}
}

// TestResilienceProgramBudget: a stalled stage trips the per-program
// deadline and the evidence names the program scope, not the stage one.
func TestResilienceProgramBudget(t *testing.T) {
	sup := &Supervisor{Analyst: Policy{},
		ProgramTimeout: 100 * time.Millisecond, FailurePolicy: CollectErrors}
	inj := fault.New(1, fault.Rule{Kind: fault.Delay, Prog: "LIST-OLD", Stage: "analyze", Delay: 10 * time.Second})
	report, err := sup.Run(fault.With(context.Background(), inj),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	o := report.Outcomes[0]
	f := o.Audit.Failure
	if o.Disposition != Failed || f == nil || f.Kind != FailTimeout || f.Scope != "program" {
		t.Fatalf("outcome = %+v, want program-budget timeout", o)
	}
	if f.Budget != 100*time.Millisecond {
		t.Errorf("budget = %s", f.Budget)
	}
	// The other programs were untouched by the neighbour's expiry.
	for _, other := range report.Outcomes[1:] {
		if other.Disposition == Failed {
			t.Errorf("%s failed alongside the budgeted program", other.Name)
		}
	}
}

// slowAnalyst blocks long enough to trip any reasonable bound.
type slowAnalyst struct{ d time.Duration }

func (a slowAnalyst) Decide(string, analyzer.Issue) bool {
	time.Sleep(a.d)
	return true
}

// TestResilienceAnalystTimeout: an unresponsive Analyst degrades to the
// strict-policy fallback — the consultation is recorded as declined and
// timed out, the program routes to Manual, and the batch never stalls.
func TestResilienceAnalystTimeout(t *testing.T) {
	tally := obs.NewTally()
	sup := &Supervisor{Analyst: slowAnalyst{d: 2 * time.Second},
		AnalystTimeout: 25 * time.Millisecond, Events: tally}
	start := time.Now()
	report, err := sup.Run(context.Background(),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("run stalled %s behind the analyst", wall)
	}
	var printAll *Outcome
	for i := range report.Outcomes {
		if report.Outcomes[i].Name == "PRINT-ALL" {
			printAll = &report.Outcomes[i]
		}
	}
	if printAll.Disposition != Manual {
		t.Fatalf("PRINT-ALL = %s, want manual via the fallback", printAll.Disposition)
	}
	d := printAll.Audit.Decisions
	if len(d) != 1 || !d[0].TimedOut || d[0].Accepted {
		t.Errorf("decisions = %+v, want one declined, timed-out consultation", d)
	}
	if !strings.Contains(printAll.Audit.Reason, "timed out") {
		t.Errorf("reason = %q", printAll.Audit.Reason)
	}
	if tally.Faults()["timeout"] != 1 {
		t.Errorf("faults = %v, want one timeout", tally.Faults())
	}
}

// panicAnalyst models a broken interactive integration.
type panicAnalyst struct{}

func (panicAnalyst) Decide(string, analyzer.Issue) bool { panic("analyst UI disconnected") }

// TestResilienceAnalystPanicIsolated: a panic inside the Analyst —
// outside any pipeline stage — is caught by the per-program barrier and
// attributed to the supervisor scope.
func TestResilienceAnalystPanicIsolated(t *testing.T) {
	sup := &Supervisor{Analyst: panicAnalyst{}, FailurePolicy: CollectErrors}
	report, err := sup.Run(context.Background(),
		schema.CompanyV1(), nil, planFigure(), nil, applicationSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	var printAll *Outcome
	for i := range report.Outcomes {
		if report.Outcomes[i].Name == "PRINT-ALL" {
			printAll = &report.Outcomes[i]
		}
	}
	f := printAll.Audit.Failure
	if printAll.Disposition != Failed || f == nil || f.Kind != FailPanic || f.Stage != "supervisor" {
		t.Fatalf("outcome = %+v, want supervisor-scope panic evidence", printAll)
	}
	if f.Value != "analyst UI disconnected" || f.Stack == "" {
		t.Errorf("failure = %+v", f)
	}
	if got := report.FailedCount(); got != 1 {
		t.Errorf("failed = %d, want only the analyst-gated program", got)
	}
}

// TestResilienceFailedDispositionCodec: the new disposition round-trips
// through the text codec like the originals.
func TestResilienceFailedDispositionCodec(t *testing.T) {
	b, err := Failed.MarshalText()
	if err != nil || string(b) != "failed" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	var d Disposition
	if err := d.UnmarshalText([]byte("failed")); err != nil || d != Failed {
		t.Fatalf("UnmarshalText = %v, %v", d, err)
	}
}
