package obs

// DataPlane aggregates the data-plane fast-path counters of one batch:
// how FIND requests were answered (exact-key index probe vs full scan)
// and how migration steps executed (fused into single passes vs one
// pass per step). It is carried on the conversion Report rather than
// the event stream — the counters are totals, not occurrences, and the
// event wire format is pinned by golden-file tests.
type DataPlane struct {
	IndexProbes   int64 `json:"index_probes"`
	IndexScans    int64 `json:"index_scans"`
	FusedSteps    int64 `json:"fused_steps"`
	StepwiseSteps int64 `json:"stepwise_steps"`
	// MigrationShards counts the shards the sharded rebuild passes
	// fanned out into; BulkLoadedRecords counts records that went
	// through the bulk-load merge phase.
	MigrationShards   int64 `json:"migration_shards"`
	BulkLoadedRecords int64 `json:"bulk_loaded_records"`
}

// Zero reports whether no data-plane activity was recorded.
func (d DataPlane) Zero() bool { return d == DataPlane{} }

// Add returns the element-wise sum.
func (d DataPlane) Add(o DataPlane) DataPlane {
	return DataPlane{
		IndexProbes:       d.IndexProbes + o.IndexProbes,
		IndexScans:        d.IndexScans + o.IndexScans,
		FusedSteps:        d.FusedSteps + o.FusedSteps,
		StepwiseSteps:     d.StepwiseSteps + o.StepwiseSteps,
		MigrationShards:   d.MigrationShards + o.MigrationShards,
		BulkLoadedRecords: d.BulkLoadedRecords + o.BulkLoadedRecords,
	}
}

// AddDataPlane folds a report's data-plane counters into the tally so
// they surface through Snapshot and WritePrometheus alongside the
// event-derived families.
func (t *Tally) AddDataPlane(d DataPlane) {
	if t == nil || d.Zero() {
		return
	}
	t.mu.Lock()
	t.dataplane = t.dataplane.Add(d)
	t.mu.Unlock()
}

// DataPlaneTotals returns the folded data-plane counters.
func (t *Tally) DataPlaneTotals() DataPlane {
	if t == nil {
		return DataPlane{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dataplane
}
