// Package obs is the supervisor's observability substrate:
//
//   - per-stage atomic counters and duration histograms plus a span
//     recorder keyed by program name (this file) — the Metrics summary
//     embedded in the conversion Report and rendered by `progconv
//     convert -stats` and cmd/exper;
//   - the structured event log (event.go): typed Events through a Sink,
//     with a bounded RingSink, a streaming JSONL encoder, and a nil-safe
//     Emitter so uninstrumented runs pay nothing;
//   - exporters (export.go): Chrome trace_event JSON for
//     chrome://tracing / Perfetto, and Prometheus text-format counters
//     fed by the Tally sink.
//
// The package is stdlib-only and safe for concurrent use: the hot path
// (span End, no-sink event emission) touches only atomics and one short
// mutex, and allocates nothing, so instrumented parallel runs stay
// within measurement noise of uninstrumented ones.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one Figure 4.1 pipeline box.
type Stage uint8

// The pipeline stages, in execution order.
const (
	StageAnalyze Stage = iota
	StageConvert
	StageOptimize
	StageGenerate
	StageVerify
	numStages
)

var stageNames = [numStages]string{
	"analyze", "convert", "optimize", "generate", "verify",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Stages returns every stage in execution order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// numBuckets histogram buckets cover 1µs·4ⁱ boundaries: <1µs, <4µs,
// <16µs, … <~4.3s, plus a final overflow bucket.
const numBuckets = 17

// BucketBound returns the exclusive upper duration bound of bucket i
// (the last bucket is unbounded).
func BucketBound(i int) time.Duration {
	return time.Microsecond << (2 * uint(i))
}

func bucketOf(d time.Duration) int {
	for i := 0; i < numBuckets-1; i++ {
		if d < BucketBound(i) {
			return i
		}
	}
	return numBuckets - 1
}

// stageAccum is one stage's lock-free accumulator.
type stageAccum struct {
	count   atomic.Int64
	nanos   atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until first observation
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func (a *stageAccum) observe(d time.Duration) {
	n := int64(d)
	a.count.Add(1)
	a.nanos.Add(n)
	for {
		cur := a.min.Load()
		if n >= cur || a.min.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := a.max.Load()
		if n <= cur || a.max.CompareAndSwap(cur, n) {
			break
		}
	}
	a.buckets[bucketOf(d)].Add(1)
}

// Recorder collects spans during one conversion run. The zero value is
// not ready; use NewRecorder.
type Recorder struct {
	stages [numStages]stageAccum
	start  time.Time

	mu    sync.Mutex
	spans map[string][]Span // program name → completed spans
}

// NewRecorder returns a recorder with the wall clock started.
func NewRecorder() *Recorder {
	r := &Recorder{start: time.Now(), spans: map[string][]Span{}}
	for i := range r.stages {
		r.stages[i].min.Store(int64(^uint64(0) >> 1))
	}
	return r
}

// Span is one completed stage execution for one program.
type Span struct {
	Program string
	Stage   Stage
	Start   time.Time
	Dur     time.Duration
}

// ActiveSpan is a started, not-yet-ended span. It is a value (not a
// pointer) so the span hot path performs no heap allocation; the zero
// value is a valid no-op span.
type ActiveSpan struct {
	rec     *Recorder
	program string
	stage   Stage
	start   time.Time
}

// StartSpan begins timing one stage of one program. End the returned
// span exactly once. A nil *Recorder is valid and records nothing, so
// call sites need no guards.
func (r *Recorder) StartSpan(program string, stage Stage) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{rec: r, program: program, stage: stage, start: time.Now()}
}

// End finishes the span and returns its duration: the duration lands in
// the stage's atomic accumulator and the span in the per-program trace.
// A zero-value span returns 0 and records nothing.
func (s ActiveSpan) End() time.Duration {
	if s.rec == nil {
		return 0
	}
	d := time.Since(s.start)
	s.rec.observe(s.program, s.stage, s.start, d)
	return d
}

// Observe records an already-measured span directly — the replay/import
// path used by tests and external span sources.
func (r *Recorder) Observe(program string, stage Stage, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.observe(program, stage, start, d)
}

func (r *Recorder) observe(program string, stage Stage, start time.Time, d time.Duration) {
	r.stages[stage].observe(d)
	r.mu.Lock()
	r.spans[program] = append(r.spans[program],
		Span{Program: program, Stage: stage, Start: start, Dur: d})
	r.mu.Unlock()
}

// Programs returns the instrumented program names, sorted — the stable
// thread order of the Chrome trace exporter.
func (r *Recorder) Programs() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.spans))
	for name := range r.spans {
		out = append(out, name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Trace returns the completed spans recorded for one program, in end
// order.
func (r *Recorder) Trace(program string) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans[program]...)
}

// StageStats is one stage's aggregate across a run.
type StageStats struct {
	Stage   Stage
	Count   int64
	Total   time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64
}

// Mean returns the average span duration (0 when nothing was recorded).
func (s StageStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Metrics is the run summary embedded in a conversion Report.
type Metrics struct {
	// Wall is the elapsed time from recorder creation to snapshot.
	Wall time.Duration
	// Programs counts distinct instrumented programs.
	Programs int
	// ByStage holds per-stage aggregates in execution order; stages
	// that never ran have Count 0.
	ByStage []StageStats
}

// Snapshot freezes the recorder into a Metrics summary.
func (r *Recorder) Snapshot() *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{Wall: time.Since(r.start)}
	r.mu.Lock()
	m.Programs = len(r.spans)
	r.mu.Unlock()
	for i := range r.stages {
		a := &r.stages[i]
		st := StageStats{Stage: Stage(i), Count: a.count.Load(),
			Total: time.Duration(a.nanos.Load())}
		if st.Count > 0 {
			st.Min = time.Duration(a.min.Load())
			st.Max = time.Duration(a.max.Load())
		}
		for b := range st.Buckets {
			st.Buckets[b] = a.buckets[b].Load()
		}
		m.ByStage = append(m.ByStage, st)
	}
	return m
}

// Stage returns the aggregate for one stage (zero stats if out of
// range).
func (m *Metrics) Stage(s Stage) StageStats {
	if m == nil || int(s) >= len(m.ByStage) {
		return StageStats{Stage: s}
	}
	return m.ByStage[s]
}

// sparkline renders a histogram as one glyph per occupied bucket range.
var sparks = []rune("▁▂▃▄▅▆▇█")

func sparkline(buckets [numBuckets]int64) string {
	lo, hi := -1, -1
	var peak int64
	for i, n := range buckets {
		if n > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if n > peak {
				peak = n
			}
		}
	}
	if lo < 0 {
		return ""
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		if buckets[i] == 0 {
			b.WriteRune(' ')
			continue
		}
		idx := int(buckets[i] * int64(len(sparks)-1) / peak)
		b.WriteRune(sparks[idx])
	}
	return b.String()
}

// String renders the summary as the -stats table.
func (m *Metrics) String() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "STAGE TIMINGS (wall %s, %d programs)\n",
		m.Wall.Round(time.Microsecond), m.Programs)
	fmt.Fprintf(&b, "%-10s %7s %12s %12s %12s %12s  %s\n",
		"stage", "spans", "total", "mean", "min", "max", "histogram")
	for _, st := range m.ByStage {
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %7d %12s %12s %12s %12s  %s\n",
			st.Stage, st.Count,
			st.Total.Round(time.Microsecond), st.Mean().Round(time.Microsecond),
			st.Min.Round(time.Microsecond), st.Max.Round(time.Microsecond),
			sparkline(st.Buckets))
	}
	b.WriteString("histogram buckets: 1µs·4ⁱ upper bounds (<1µs, <4µs, <16µs, …; last bucket unbounded)\n")
	return b.String()
}

// Slowest returns the n programs with the largest summed span time,
// slowest first — the supervisor's answer to "which conversions cost".
func (r *Recorder) Slowest(n int) []ProgramCost {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	costs := make([]ProgramCost, 0, len(r.spans))
	for name, spans := range r.spans {
		var total time.Duration
		for _, s := range spans {
			total += s.Dur
		}
		costs = append(costs, ProgramCost{Program: name, Total: total})
	}
	r.mu.Unlock()
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].Total != costs[j].Total {
			return costs[i].Total > costs[j].Total
		}
		return costs[i].Program < costs[j].Program
	})
	if n < len(costs) {
		costs = costs[:n]
	}
	return costs
}

// ProgramCost is one program's summed stage time.
type ProgramCost struct {
	Program string
	Total   time.Duration
}
