package obs

// The structured event log. Every decision the Conversion Supervisor
// makes — stage boundaries, hazard findings, DML rewrites, Analyst
// consultations, verification verdicts, final dispositions — is emitted
// as a typed Event through a Sink. Sinks compose (MultiSink); a bounded
// RingSink for in-memory capture and the Tally counter collector in
// export.go live here, the streaming wire.JSONLSink in internal/wire.
//
// Instrumented code holds an *Emitter, the nil-safe front door: a nil
// Emitter (no sink installed) makes every method a no-op without a
// single allocation, so the pipeline's hot path costs nothing when the
// run is not being observed. Within one program's conversion all events
// are emitted from that program's worker goroutine in pipeline order,
// so the per-program event subsequence is deterministic at any
// parallelism; Seq records the global interleaving of one run.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one event-log entry.
type EventKind uint8

// The event kinds.
const (
	// EvStageStart/EvStageEnd bracket one Figure 4.1 stage of one program.
	EvStageStart EventKind = iota
	EvStageEnd
	// EvHazard is one §3.2 (or converter-raised) finding; Label is the
	// issue kind, Detail the message.
	EvHazard
	// EvRewrite is one DML statement mapped to the target schema; Label
	// is the DML verb, Detail the principal name (set, record, …).
	EvRewrite
	// EvDecision is one Analyst consultation; Label is the issue kind,
	// Accepted the answer.
	EvDecision
	// EvVerify is one equivalence verdict; Label is "pass" or "fail".
	EvVerify
	// EvOutcome closes a program's trail; Label is the disposition,
	// Detail the audit reason.
	EvOutcome
	// EvRetry is one transient-error retry of a stage; Label is the stage
	// name, Detail the attempt, backoff, and error.
	EvRetry
	// EvPanic is one recovered worker panic; Label is the stage name (or
	// "supervisor" outside a stage), Detail the panic value.
	EvPanic
	// EvTimeout is one expired budget; Label is the stage name,
	// "program", or "analyst", Detail the budget.
	EvTimeout
	// EvCacheHit/EvCacheMiss record one conversion-cache lookup; Label is
	// the cache scope ("pair", "analysis", "conversion", "codegen"),
	// Detail the short content fingerprint. Prog is empty for pair-scoped
	// lookups, which belong to no single program.
	EvCacheHit
	EvCacheMiss
	// EvCacheEvict records one LRU eviction; Label is the scope, Detail
	// the evicted entry's short fingerprint.
	EvCacheEvict
)

var eventKindNames = [...]string{
	"stage-start", "stage-end", "hazard", "rewrite",
	"decision", "verify", "outcome", "retry", "panic", "timeout",
	"cache-hit", "cache-miss", "cache-evict",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one entry of the structured event log.
type Event struct {
	// Seq is the 1-based global emission order within one run.
	Seq uint64
	// T is the offset from the emitter's start (the wall-clock axis of
	// the log; zeroed by encoders asked to omit timing).
	T time.Duration
	// Prog names the program the event belongs to.
	Prog string
	// Kind classifies the event.
	Kind EventKind
	// Stage is set for stage-start/stage-end events.
	Stage Stage
	// Dur is the stage duration on stage-end events (0 when the run has
	// no metrics recorder).
	Dur time.Duration
	// Label is the event's low-cardinality dimension: hazard kind, DML
	// verb, issue kind, "pass"/"fail", or disposition.
	Label string
	// Detail is the free-form explanation.
	Detail string
	// Accepted is the Analyst's answer on decision events.
	Accepted bool
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
}

// Emitter is the nil-safe instrumentation front door: call sites hold
// an *Emitter and never guard. A nil Emitter no-ops every method with
// zero allocations.
type Emitter struct {
	sink  Sink
	start time.Time
	seq   atomic.Uint64
}

// NewEmitter wraps a sink; a nil sink yields a nil (inert) emitter.
func NewEmitter(s Sink) *Emitter {
	if s == nil {
		return nil
	}
	return &Emitter{sink: s, start: time.Now()}
}

// Enabled reports whether events are being collected; use it to skip
// building expensive Detail strings.
func (e *Emitter) Enabled() bool { return e != nil }

func (e *Emitter) emit(ev Event) {
	if e == nil {
		return
	}
	ev.Seq = e.seq.Add(1)
	ev.T = time.Since(e.start)
	e.sink.Emit(ev)
}

// StageStart records one program entering a pipeline stage.
func (e *Emitter) StageStart(prog string, st Stage) {
	e.emit(Event{Prog: prog, Kind: EvStageStart, Stage: st})
}

// StageEnd records one program leaving a pipeline stage.
func (e *Emitter) StageEnd(prog string, st Stage, d time.Duration) {
	e.emit(Event{Prog: prog, Kind: EvStageEnd, Stage: st, Dur: d})
}

// Hazard records one finding against a program.
func (e *Emitter) Hazard(prog, kind, msg string) {
	e.emit(Event{Prog: prog, Kind: EvHazard, Label: kind, Detail: msg})
}

// Rewrite records one DML statement mapped to the target schema.
func (e *Emitter) Rewrite(prog, verb, detail string) {
	e.emit(Event{Prog: prog, Kind: EvRewrite, Label: verb, Detail: detail})
}

// Decision records one Analyst consultation and its answer.
func (e *Emitter) Decision(prog, kind, msg string, accepted bool) {
	e.emit(Event{Prog: prog, Kind: EvDecision, Label: kind, Detail: msg, Accepted: accepted})
}

// Verify records one equivalence verdict.
func (e *Emitter) Verify(prog string, pass bool, detail string) {
	label := "fail"
	if pass {
		label = "pass"
	}
	e.emit(Event{Prog: prog, Kind: EvVerify, Label: label, Detail: detail})
}

// Outcome closes one program's trail with its disposition and reason.
func (e *Emitter) Outcome(prog, disposition, reason string) {
	e.emit(Event{Prog: prog, Kind: EvOutcome, Label: disposition, Detail: reason})
}

// Retry records one transient-error retry of a stage: attempt is the
// 1-based retry number, backoff the deterministic pause before it.
func (e *Emitter) Retry(prog, stage string, attempt int, backoff time.Duration, errText string) {
	e.emit(Event{Prog: prog, Kind: EvRetry, Label: stage,
		Detail: fmt.Sprintf("retry %d after %s backoff: %s", attempt, backoff, errText)})
}

// Panic records one recovered worker panic; stage is "supervisor" for
// panics outside any pipeline stage.
func (e *Emitter) Panic(prog, stage, value string) {
	e.emit(Event{Prog: prog, Kind: EvPanic, Label: stage, Detail: value})
}

// Timeout records one expired budget; scope is the stage name,
// "program", or "analyst".
func (e *Emitter) Timeout(prog, scope string, budget time.Duration) {
	e.emit(Event{Prog: prog, Kind: EvTimeout, Label: scope,
		Detail: fmt.Sprintf("exceeded %s budget", budget)})
}

// CacheHit records one conversion-cache hit; prog is "" for pair-scoped
// lookups and key the short content fingerprint.
func (e *Emitter) CacheHit(prog, scope, key string) {
	e.emit(Event{Prog: prog, Kind: EvCacheHit, Label: scope, Detail: key})
}

// CacheMiss records one conversion-cache miss.
func (e *Emitter) CacheMiss(prog, scope, key string) {
	e.emit(Event{Prog: prog, Kind: EvCacheMiss, Label: scope, Detail: key})
}

// CacheEvict records one LRU eviction from a cache scope.
func (e *Emitter) CacheEvict(scope, key string) {
	e.emit(Event{Kind: EvCacheEvict, Label: scope, Detail: key})
}

// emitterKey carries an Emitter through a context into the deeper
// pipeline layers (analyzer, convert, equiv).
type emitterKey struct{}

// WithEmitter returns a context carrying the emitter. A nil emitter
// returns ctx unchanged, keeping the no-observation path free.
func WithEmitter(ctx context.Context, e *Emitter) context.Context {
	if e == nil {
		return ctx
	}
	return context.WithValue(ctx, emitterKey{}, e)
}

// EmitterFrom extracts the context's emitter; nil (inert) when absent.
func EmitterFrom(ctx context.Context) *Emitter {
	e, _ := ctx.Value(emitterKey{}).(*Emitter)
	return e
}

// RingSink is a bounded in-memory sink: the newest capacity events are
// kept, older ones are dropped (counted). The single short critical
// section keeps Emit lock-cheap under concurrent workers.
type RingSink struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total emitted
}

// NewRingSink returns a ring holding up to capacity events (min 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first, in arrival order.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	cap := uint64(len(r.buf))
	if r.n <= cap {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	out := make([]Event, 0, cap)
	for i := r.n - cap; i < r.n; i++ {
		out = append(out, r.buf[i%cap])
	}
	return out
}

// Total returns how many events were emitted into the ring.
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events fell out of the bounded window.
func (r *RingSink) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap := uint64(len(r.buf)); r.n > cap {
		return r.n - cap
	}
	return 0
}

// multiSink fans one Emit out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// MultiSink composes sinks; nils are skipped. Zero or one live sink
// collapses to nil or the sink itself.
func MultiSink(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// The JSON rendering of events lives in internal/wire (the versioned
// wire schema shared by the CLIs and the daemon): wire.EncodeJSONL,
// wire.EncodeEvent and wire.JSONLSink. This package defines only the
// in-memory Event and the sinks that do not serialize.
