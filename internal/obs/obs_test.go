package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanAccumulation(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("P1", StageConvert)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	sp := r.StartSpan("P2", StageAnalyze)
	sp.End()

	m := r.Snapshot()
	if m.Programs != 2 {
		t.Errorf("programs = %d, want 2", m.Programs)
	}
	conv := m.Stage(StageConvert)
	if conv.Count != 3 {
		t.Errorf("convert count = %d, want 3", conv.Count)
	}
	if conv.Total < 3*time.Millisecond {
		t.Errorf("convert total = %v, want >= 3ms", conv.Total)
	}
	if conv.Min == 0 || conv.Max < conv.Min || conv.Mean() < conv.Min || conv.Mean() > conv.Max {
		t.Errorf("min/mean/max inconsistent: %v/%v/%v", conv.Min, conv.Mean(), conv.Max)
	}
	if got := m.Stage(StageVerify).Count; got != 0 {
		t.Errorf("verify count = %d, want 0", got)
	}
	if len(r.Trace("P1")) != 3 || len(r.Trace("P2")) != 1 {
		t.Errorf("traces = %d/%d, want 3/1", len(r.Trace("P1")), len(r.Trace("P2")))
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan("X", StageVerify)
	if d := sp.End(); d != 0 { // must not panic
		t.Errorf("nil-recorder span duration = %v, want 0", d)
	}
	(ActiveSpan{}).End() // the zero-value span is equally inert
	r.Observe("X", StageVerify, time.Now(), time.Second)
	if r.Snapshot() != nil || r.Trace("X") != nil || r.Slowest(5) != nil || r.Programs() != nil {
		t.Error("nil recorder should return nil summaries")
	}
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := r.StartSpan("P", Stage(i%int(numStages)))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	m := r.Snapshot()
	var total int64
	for _, st := range m.ByStage {
		total += st.Count
		var hist int64
		for _, b := range st.Buckets {
			hist += b
		}
		if hist != st.Count {
			t.Errorf("%s: histogram sums %d, count %d", st.Stage, hist, st.Count)
		}
	}
	if total != workers*per {
		t.Errorf("total spans = %d, want %d", total, workers*per)
	}
}

func TestBucketOf(t *testing.T) {
	if b := bucketOf(0); b != 0 {
		t.Errorf("bucketOf(0) = %d", b)
	}
	if b := bucketOf(2 * time.Microsecond); b != 1 {
		t.Errorf("bucketOf(2µs) = %d", b)
	}
	if b := bucketOf(time.Hour); b != numBuckets-1 {
		t.Errorf("bucketOf(1h) = %d", b)
	}
}

func TestMetricsString(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("P", StageGenerate)
	sp.End()
	s := r.Snapshot().String()
	for _, want := range []string{"STAGE TIMINGS", "generate", "histogram",
		"histogram buckets: 1µs·4ⁱ"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "verify") {
		t.Errorf("empty stage rendered:\n%s", s)
	}
}

func TestSlowest(t *testing.T) {
	r := NewRecorder()
	slow := r.StartSpan("SLOW", StageConvert)
	time.Sleep(2 * time.Millisecond)
	slow.End()
	fast := r.StartSpan("FAST", StageConvert)
	fast.End()
	costs := r.Slowest(1)
	if len(costs) != 1 || costs[0].Program != "SLOW" {
		t.Errorf("slowest = %+v", costs)
	}
}

// TestSlowestTieBreak: equal totals order by program name, so the
// ranking (like every other report surface) is deterministic.
func TestSlowestTieBreak(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	for _, name := range []string{"ZEBRA", "ALPHA", "MIDDLE"} {
		r.Observe(name, StageConvert, now, 5*time.Millisecond)
	}
	costs := r.Slowest(3)
	if len(costs) != 3 {
		t.Fatalf("costs = %d, want 3", len(costs))
	}
	for i, want := range []string{"ALPHA", "MIDDLE", "ZEBRA"} {
		if costs[i].Program != want {
			t.Errorf("costs[%d] = %s, want %s (name tie-break)", i, costs[i].Program, want)
		}
	}
	// n larger than the population returns everything.
	if got := r.Slowest(10); len(got) != 3 {
		t.Errorf("Slowest(10) = %d entries, want 3", len(got))
	}
}

func TestProgramsSorted(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Observe("B", StageAnalyze, now, time.Microsecond)
	r.Observe("A", StageAnalyze, now, time.Microsecond)
	got := r.Programs()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Programs() = %v, want [A B]", got)
	}
}

func TestStageString(t *testing.T) {
	if StageOptimize.String() != "optimize" {
		t.Errorf("optimize = %q", StageOptimize)
	}
	if got := Stage(200).String(); got != "stage(200)" {
		t.Errorf("unknown stage = %q", got)
	}
	if len(Stages()) != int(numStages) {
		t.Errorf("Stages() = %v", Stages())
	}
}
