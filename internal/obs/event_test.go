package obs

import (
	"testing"
	"time"
)

func TestNilEmitterNoOps(t *testing.T) {
	if NewEmitter(nil) != nil {
		t.Fatal("NewEmitter(nil) must return a nil emitter")
	}
	var e *Emitter
	if e.Enabled() {
		t.Error("nil emitter reports Enabled")
	}
	// None of these may panic or allocate.
	e.StageStart("P", StageAnalyze)
	e.StageEnd("P", StageAnalyze, time.Millisecond)
	e.Hazard("P", "kind", "msg")
	e.Rewrite("P", "get", "EMP")
	e.Decision("P", "kind", "msg", true)
	e.Verify("P", true, "ok")
	e.Outcome("P", "auto", "reason")
	if allocs := testing.AllocsPerRun(100, func() {
		e.StageStart("P", StageConvert)
		e.Rewrite("P", "get", "EMP")
		e.StageEnd("P", StageConvert, 0)
	}); allocs != 0 {
		t.Errorf("nil emitter allocated %v per run, want 0", allocs)
	}
}

// TestSpanHotPathZeroAlloc is the ISSUE's allocation acceptance
// criterion: an instrumented pipeline with no sink installed adds zero
// allocations on the span hot path (warm recorder, nil emitter).
func TestSpanHotPathZeroAlloc(t *testing.T) {
	r := NewRecorder()
	r.StartSpan("P", StageConvert).End() // warm the per-program slice
	var e *Emitter
	if allocs := testing.AllocsPerRun(100, func() {
		e.StageStart("P", StageConvert)
		sp := r.StartSpan("P", StageConvert)
		e.StageEnd("P", StageConvert, sp.End())
	}); allocs != 0 {
		t.Errorf("span hot path allocated %v per run, want 0", allocs)
	}
}

func TestEmitterSeqAndTimes(t *testing.T) {
	ring := NewRingSink(8)
	e := NewEmitter(ring)
	e.Hazard("P", "k", "first")
	e.Verify("P", false, "second")
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].T < evs[0].T {
		t.Errorf("timestamps not monotone: %v then %v", evs[0].T, evs[1].T)
	}
	if evs[1].Label != "fail" {
		t.Errorf("verify label = %q, want fail", evs[1].Label)
	}
}

func TestRingSinkBoundAndDrop(t *testing.T) {
	ring := NewRingSink(4)
	e := NewEmitter(ring)
	for i := 0; i < 10; i++ {
		e.Rewrite("P", "get", "EMP")
	}
	if got := ring.Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
	if got := ring.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
	if NewRingSink(0) == nil || len(NewRingSink(-3).Events()) != 0 {
		t.Error("degenerate capacities must still yield a working ring")
	}
}

func TestMultiSink(t *testing.T) {
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Error("MultiSink with no live sinks must collapse to nil")
	}
	one := NewRingSink(4)
	if got := MultiSink(nil, one); got != Sink(one) {
		t.Error("MultiSink with one live sink must return it unwrapped")
	}
	two := NewRingSink(4)
	e := NewEmitter(MultiSink(one, nil, two))
	e.Hazard("P", "k", "m")
	if one.Total() != 1 || two.Total() != 1 {
		t.Errorf("fan-out totals = %d,%d, want 1,1", one.Total(), two.Total())
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvStageStart: "stage-start", EvStageEnd: "stage-end",
		EvHazard: "hazard", EvRewrite: "rewrite", EvDecision: "decision",
		EvVerify: "verify", EvOutcome: "outcome",
		EvRetry: "retry", EvPanic: "panic", EvTimeout: "timeout",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := EventKind(99).String(); got != "event(?)" {
		t.Errorf("unknown kind = %q", got)
	}
}
