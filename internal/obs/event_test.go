package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilEmitterNoOps(t *testing.T) {
	if NewEmitter(nil) != nil {
		t.Fatal("NewEmitter(nil) must return a nil emitter")
	}
	var e *Emitter
	if e.Enabled() {
		t.Error("nil emitter reports Enabled")
	}
	// None of these may panic or allocate.
	e.StageStart("P", StageAnalyze)
	e.StageEnd("P", StageAnalyze, time.Millisecond)
	e.Hazard("P", "kind", "msg")
	e.Rewrite("P", "get", "EMP")
	e.Decision("P", "kind", "msg", true)
	e.Verify("P", true, "ok")
	e.Outcome("P", "auto", "reason")
	if allocs := testing.AllocsPerRun(100, func() {
		e.StageStart("P", StageConvert)
		e.Rewrite("P", "get", "EMP")
		e.StageEnd("P", StageConvert, 0)
	}); allocs != 0 {
		t.Errorf("nil emitter allocated %v per run, want 0", allocs)
	}
}

// TestSpanHotPathZeroAlloc is the ISSUE's allocation acceptance
// criterion: an instrumented pipeline with no sink installed adds zero
// allocations on the span hot path (warm recorder, nil emitter).
func TestSpanHotPathZeroAlloc(t *testing.T) {
	r := NewRecorder()
	r.StartSpan("P", StageConvert).End() // warm the per-program slice
	var e *Emitter
	if allocs := testing.AllocsPerRun(100, func() {
		e.StageStart("P", StageConvert)
		sp := r.StartSpan("P", StageConvert)
		e.StageEnd("P", StageConvert, sp.End())
	}); allocs != 0 {
		t.Errorf("span hot path allocated %v per run, want 0", allocs)
	}
}

func TestEmitterSeqAndTimes(t *testing.T) {
	ring := NewRingSink(8)
	e := NewEmitter(ring)
	e.Hazard("P", "k", "first")
	e.Verify("P", false, "second")
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].T < evs[0].T {
		t.Errorf("timestamps not monotone: %v then %v", evs[0].T, evs[1].T)
	}
	if evs[1].Label != "fail" {
		t.Errorf("verify label = %q, want fail", evs[1].Label)
	}
}

func TestRingSinkBoundAndDrop(t *testing.T) {
	ring := NewRingSink(4)
	e := NewEmitter(ring)
	for i := 0; i < 10; i++ {
		e.Rewrite("P", "get", "EMP")
	}
	if got := ring.Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
	if got := ring.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
	if NewRingSink(0) == nil || len(NewRingSink(-3).Events()) != 0 {
		t.Error("degenerate capacities must still yield a working ring")
	}
}

func TestMultiSink(t *testing.T) {
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Error("MultiSink with no live sinks must collapse to nil")
	}
	one := NewRingSink(4)
	if got := MultiSink(nil, one); got != Sink(one) {
		t.Error("MultiSink with one live sink must return it unwrapped")
	}
	two := NewRingSink(4)
	e := NewEmitter(MultiSink(one, nil, two))
	e.Hazard("P", "k", "m")
	if one.Total() != 1 || two.Total() != 1 {
		t.Errorf("fan-out totals = %d,%d, want 1,1", one.Total(), two.Total())
	}
}

func TestEncodeJSONLShape(t *testing.T) {
	events := []Event{
		{Seq: 1, T: time.Second, Prog: "P", Kind: EvStageStart, Stage: StageAnalyze},
		{Seq: 2, T: time.Second, Prog: "P", Kind: EvStageEnd, Stage: StageAnalyze, Dur: time.Millisecond},
		{Seq: 3, T: time.Second, Prog: "P", Kind: EvDecision, Label: "order-dependence", Detail: "why", Accepted: true},
		{Seq: 4, T: time.Second, Prog: "P", Kind: EvOutcome, Label: "auto", Detail: "reason"},
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, events, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	var m map[string]any
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if _, ok := m["t_ns"]; ok {
			t.Errorf("line %d: omitTiming left t_ns", i)
		}
		if _, ok := m["dur_ns"]; ok {
			t.Errorf("line %d: omitTiming left dur_ns", i)
		}
	}
	if !strings.Contains(lines[0], `"stage":"analyze"`) {
		t.Errorf("stage-start line missing stage: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"accepted":true`) {
		t.Errorf("decision line missing accepted: %s", lines[2])
	}
	if strings.Contains(lines[3], "accepted") || strings.Contains(lines[3], "stage") {
		t.Errorf("outcome line carries fields of other kinds: %s", lines[3])
	}

	// With timing on, the wall-clock fields appear.
	buf.Reset()
	if err := EncodeJSONL(&buf, events[1:2], false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"t_ns"`) || !strings.Contains(buf.String(), `"dur_ns"`) {
		t.Errorf("timed encoding missing wall-clock fields: %s", buf.String())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLSinkStickyError(t *testing.T) {
	w := &failWriter{}
	s := NewJSONLSink(w)
	s.Emit(Event{Prog: "P"})
	s.Emit(Event{Prog: "P"})
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if w.n != 1 {
		t.Errorf("writer called %d times after first error, want 1", w.n)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvStageStart: "stage-start", EvStageEnd: "stage-end",
		EvHazard: "hazard", EvRewrite: "rewrite", EvDecision: "decision",
		EvVerify: "verify", EvOutcome: "outcome",
		EvRetry: "retry", EvPanic: "panic", EvTimeout: "timeout",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := EventKind(99).String(); got != "event(?)" {
		t.Errorf("unknown kind = %q", got)
	}
}
