package obs

// Exporters: the run's observability data in the two formats outside
// tooling actually loads — Chrome trace_event JSON (chrome://tracing,
// Perfetto) from the span recorder, and Prometheus text-format
// exposition from the Tally counter sink plus the Metrics summary.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tally is a Sink that folds the event stream into counters: programs
// by disposition, hazard findings by kind, DML rewrites by verb,
// verification verdicts, and resilience faults (retries, recovered
// panics, expired budgets) by kind. It is the data source for the
// Prometheus exporter and the expvar debug endpoint.
type Tally struct {
	mu           sync.Mutex
	dispositions map[string]int64
	hazards      map[string]int64
	rewrites     map[string]int64
	verdicts     map[string]int64
	faults       map[string]int64
	cacheHits    map[string]int64
	cacheMisses  map[string]int64
	cacheEvicts  map[string]int64
	// dataplane holds report-level counters folded in via AddDataPlane
	// (not event-derived: reports carry totals, the stream carries
	// occurrences).
	dataplane DataPlane
}

// NewTally returns an empty counter collector.
func NewTally() *Tally {
	return &Tally{
		dispositions: map[string]int64{},
		hazards:      map[string]int64{},
		rewrites:     map[string]int64{},
		verdicts:     map[string]int64{},
		faults:       map[string]int64{},
		cacheHits:    map[string]int64{},
		cacheMisses:  map[string]int64{},
		cacheEvicts:  map[string]int64{},
	}
}

// Emit implements Sink.
func (t *Tally) Emit(ev Event) {
	t.mu.Lock()
	switch ev.Kind {
	case EvOutcome:
		t.dispositions[ev.Label]++
	case EvHazard:
		t.hazards[ev.Label]++
	case EvRewrite:
		t.rewrites[ev.Label]++
	case EvVerify:
		t.verdicts[ev.Label]++
	case EvRetry, EvPanic, EvTimeout:
		t.faults[ev.Kind.String()]++
	case EvCacheHit:
		t.cacheHits[ev.Label]++
	case EvCacheMiss:
		t.cacheMisses[ev.Label]++
	case EvCacheEvict:
		t.cacheEvicts[ev.Label]++
	}
	t.mu.Unlock()
}

// Faults returns the resilience counters keyed by event kind ("retry",
// "panic", "timeout") — the numbers chaos tests reconcile against the
// injected fault plan.
func (t *Tally) Faults() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return cloneCounts(t.faults)
}

// Snapshot flattens the counters into "family/label" keys — the shape
// served live by the expvar debug endpoint.
func (t *Tally) Snapshot() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]int64{}
	for _, f := range []struct {
		name string
		m    map[string]int64
	}{
		{"programs", t.dispositions},
		{"hazards", t.hazards},
		{"rewrites", t.rewrites},
		{"verifications", t.verdicts},
		{"faults", t.faults},
		{"cache_hits", t.cacheHits},
		{"cache_misses", t.cacheMisses},
		{"cache_evictions", t.cacheEvicts},
	} {
		for label, n := range f.m {
			out[f.name+"/"+label] = n
		}
	}
	// Data-plane totals are always present — a scraper watching the
	// debug endpoint must never see a key appear or vanish between
	// samples just because activity started or stopped.
	out["dataplane/index_probes"] = t.dataplane.IndexProbes
	out["dataplane/index_scans"] = t.dataplane.IndexScans
	out["dataplane/migration_fused_steps"] = t.dataplane.FusedSteps
	out["dataplane/migration_stepwise_steps"] = t.dataplane.StepwiseSteps
	out["dataplane/migration_shards"] = t.dataplane.MigrationShards
	out["dataplane/bulk_loaded_records"] = t.dataplane.BulkLoadedRecords
	return out
}

// promFamily writes one counter family, labels sorted for byte-stable
// output.
func promFamily(w io.Writer, name, help, label string, m map[string]int64) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
		return err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, m[k]); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the tally — and, when m is non-nil, the
// per-stage latency histograms — in Prometheus text exposition format.
// A nil *Tally is valid: the counter families are skipped and only the
// metrics sections (when m is non-nil) are written.
func (t *Tally) WritePrometheus(w io.Writer, m *Metrics) error {
	var families []struct {
		name, help, label string
		m                 map[string]int64
	}
	var dp DataPlane
	if t != nil {
		t.mu.Lock()
		dp = t.dataplane
		families = []struct {
			name, help, label string
			m                 map[string]int64
		}{
			{"progconv_programs_total", "Programs by conversion disposition.", "disposition", cloneCounts(t.dispositions)},
			{"progconv_hazards_total", "Hazard findings by kind.", "kind", cloneCounts(t.hazards)},
			{"progconv_dml_rewrites_total", "DML statements rewritten by verb.", "verb", cloneCounts(t.rewrites)},
			{"progconv_verifications_total", "Equivalence verdicts by result.", "result", cloneCounts(t.verdicts)},
			{"progconv_faults_total", "Resilience faults by kind (retry, panic, timeout).", "kind", cloneCounts(t.faults)},
			{"progconv_cache_hits_total", "Conversion-cache hits by scope.", "scope", cloneCounts(t.cacheHits)},
			{"progconv_cache_misses_total", "Conversion-cache misses by scope.", "scope", cloneCounts(t.cacheMisses)},
			{"progconv_cache_evictions_total", "Conversion-cache LRU evictions by scope.", "scope", cloneCounts(t.cacheEvicts)},
		}
		t.mu.Unlock()
	}
	for _, f := range families {
		if err := promFamily(w, f.name, f.help, f.label, f.m); err != nil {
			return err
		}
	}
	// Data-plane counters are label-free totals, written
	// unconditionally (zeros included): a registered time series that
	// disappears between scrapes breaks rate() and alerting, so the
	// family set never depends on whether activity happened yet.
	if t != nil {
		for _, c := range []struct {
			name, help string
			v          int64
		}{
			{"progconv_index_probes_total", "FIND requests answered by an exact-key index probe.", dp.IndexProbes},
			{"progconv_index_scans_total", "FIND requests answered by a full occurrence scan.", dp.IndexScans},
			{"progconv_migration_fused_steps_total", "Migration steps executed inside fused single-pass runs.", dp.FusedSteps},
			{"progconv_migration_stepwise_steps_total", "Migration steps executed as their own full-database pass.", dp.StepwiseSteps},
			{"progconv_migration_shards_total", "Shards the sharded migration rebuild passes fanned out into.", dp.MigrationShards},
			{"progconv_bulk_loaded_records_total", "Records inserted through the bulk-load merge phase.", dp.BulkLoadedRecords},
		} {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				c.name, c.help, c.name, c.name, c.v); err != nil {
				return err
			}
		}
	}
	if m == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"# HELP progconv_stage_duration_seconds Per-program pipeline stage latency.\n# TYPE progconv_stage_duration_seconds histogram\n"); err != nil {
		return err
	}
	for _, st := range m.ByStage {
		if st.Count == 0 {
			continue
		}
		stage := st.Stage.String()
		var cum int64
		for i := 0; i < numBuckets-1; i++ {
			cum += st.Buckets[i]
			le := strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
			if _, err := fmt.Fprintf(w,
				"progconv_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", stage, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"progconv_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, st.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "progconv_stage_duration_seconds_sum{stage=%q} %s\n",
			stage, strconv.FormatFloat(st.Total.Seconds(), 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "progconv_stage_duration_seconds_count{stage=%q} %d\n",
			stage, st.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# HELP progconv_run_wall_seconds Batch wall-clock time.\n# TYPE progconv_run_wall_seconds gauge\nprogconv_run_wall_seconds %s\n",
		strconv.FormatFloat(m.Wall.Seconds(), 'g', -1, 64))
	return err
}

func cloneCounts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// traceEvent is one Chrome trace_event entry ("X" complete spans and
// "M" thread-name metadata).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorder's spans as Chrome trace_event
// JSON: one virtual thread per program (named), one complete ("X")
// event per stage span, timestamps relative to recorder start. Load the
// file in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	programs := r.Programs()
	events := make([]traceEvent, 0, 2*len(programs))
	for tid, prog := range programs {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid + 1,
			Args: map[string]string{"name": prog},
		})
		for _, sp := range r.Trace(prog) {
			events = append(events, traceEvent{
				Name: sp.Stage.String(), Cat: "stage", Ph: "X",
				Ts:  float64(sp.Start.Sub(r.start)) / float64(time.Microsecond),
				Dur: float64(sp.Dur) / float64(time.Microsecond),
				Pid: 1, Tid: tid + 1,
				Args: map[string]string{"program": prog},
			})
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := encodeTraceEvent(w, ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func encodeTraceEvent(w io.Writer, ev traceEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
