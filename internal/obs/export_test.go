package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"
)

func testTally() *Tally {
	tally := NewTally()
	e := NewEmitter(tally)
	e.Outcome("A", "auto", "r")
	e.Outcome("B", "manual", "r")
	e.Outcome("C", "auto", "r")
	e.Hazard("B", "order-dependence", "m")
	e.Rewrite("A", "get", "EMP")
	e.Rewrite("A", "move", "EMP")
	e.Rewrite("C", "get", "EMP")
	e.Verify("A", true, "ok")
	e.Verify("C", false, "diff")
	return tally
}

func TestTallySnapshot(t *testing.T) {
	snap := testTally().Snapshot()
	want := map[string]int64{
		"programs/auto": 2, "programs/manual": 1,
		"hazards/order-dependence": 1,
		"rewrites/get":             2, "rewrites/move": 1,
		"verifications/pass": 1, "verifications/fail": 1,
		// The data-plane totals are always present, zeros included — a
		// scraper must never see keys appear or vanish between samples.
		"dataplane/index_probes": 0, "dataplane/index_scans": 0,
		"dataplane/migration_fused_steps": 0, "dataplane/migration_stepwise_steps": 0,
		"dataplane/migration_shards": 0, "dataplane/bulk_loaded_records": 0,
	}
	for k, n := range want {
		if snap[k] != n {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], n)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d keys, want %d: %v", len(snap), len(want), snap)
	}
}

// promLine matches the three legal line shapes of the Prometheus text
// exposition format (comment, labelled sample, bare sample).
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
	`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+(Inf)?)$`)

// TestWritePrometheusFormat is the ISSUE's format-lint acceptance
// criterion: every line parses, HELP/TYPE precede their samples, and
// the output ends with a newline.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRecorder()
	r.Observe("A", StageAnalyze, time.Now(), 3*time.Microsecond)
	r.Observe("A", StageConvert, time.Now(), 40*time.Microsecond)
	m := r.Snapshot()

	var buf bytes.Buffer
	if err := testTally().WritePrometheus(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("output does not end with a newline")
	}
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line %d fails format lint: %q", i+1, line)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("line %d: sample %q precedes its # TYPE", i+1, name)
		}
	}
	for _, want := range []string{
		`progconv_programs_total{disposition="auto"} 2`,
		`progconv_hazards_total{kind="order-dependence"} 1`,
		`progconv_dml_rewrites_total{verb="get"} 2`,
		`progconv_verifications_total{result="pass"} 1`,
		`progconv_stage_duration_seconds_bucket{stage="analyze",le="+Inf"} 1`,
		`progconv_stage_duration_seconds_count{stage="convert"} 1`,
		"progconv_run_wall_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Without metrics only the counter families appear.
	buf.Reset()
	if err := testTally().WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "stage_duration") {
		t.Error("nil metrics still rendered histograms")
	}
}

// TestTallyFaultCounters: retry/panic/timeout events fold into the
// faults family, surfaced by Faults(), Snapshot() and the Prometheus
// exporter.
func TestTallyFaultCounters(t *testing.T) {
	tally := NewTally()
	e := NewEmitter(tally)
	e.Retry("A", "analyze", 1, 50*time.Millisecond, "transient: boom")
	e.Retry("B", "generate", 1, 50*time.Millisecond, "transient: boom")
	e.Panic("C", "convert", "injected")
	e.Timeout("D", "analyze", 25*time.Millisecond)
	e.Timeout("E", "program", time.Second)

	faults := tally.Faults()
	for kind, want := range map[string]int64{"retry": 2, "panic": 1, "timeout": 2} {
		if faults[kind] != want {
			t.Errorf("Faults()[%q] = %d, want %d", kind, faults[kind], want)
		}
	}
	snap := tally.Snapshot()
	if snap["faults/retry"] != 2 || snap["faults/panic"] != 1 || snap["faults/timeout"] != 2 {
		t.Errorf("snapshot faults = %v", snap)
	}
	var buf bytes.Buffer
	if err := tally.WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`progconv_faults_total{kind="retry"} 2`,
		`progconv_faults_total{kind="panic"} 1`,
		`progconv_faults_total{kind="timeout"} 2`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
	if (*Tally)(nil).Faults() != nil {
		t.Error("nil tally returned counters")
	}
}

// TestWritePrometheusNilTally: a nil *Tally writes only the metrics
// sections instead of panicking — the facade's constructor-symmetry
// guarantee.
func TestWritePrometheusNilTally(t *testing.T) {
	r := NewRecorder()
	r.Observe("A", StageAnalyze, time.Now(), 3*time.Microsecond)
	var buf bytes.Buffer
	if err := (*Tally)(nil).WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "progconv_programs_total") {
		t.Error("nil tally rendered counter families")
	}
	for _, want := range []string{"progconv_stage_duration_seconds", "progconv_run_wall_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics-only output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := (*Tally)(nil).WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil tally, nil metrics wrote %q", buf.String())
	}
}

// TestWriteChromeTrace is the ISSUE's trace acceptance criterion: the
// exporter's output parses as valid JSON, with one named thread per
// program and one complete event per span.
func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Observe("B-PROG", StageAnalyze, time.Now(), 5*time.Microsecond)
	r.Observe("A-PROG", StageAnalyze, time.Now(), 5*time.Microsecond)
	r.Observe("A-PROG", StageConvert, time.Now(), 7*time.Microsecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("trace events = %d, want 5", len(doc.TraceEvents))
	}
	meta, spans := 0, 0
	tidByProg := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			tidByProg[ev.Args["name"].(string)] = ev.Tid
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Errorf("span %s has dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || spans != 3 {
		t.Errorf("meta/spans = %d/%d, want 2/3", meta, spans)
	}
	// Thread order follows sorted program names.
	if tidByProg["A-PROG"] != 1 || tidByProg["B-PROG"] != 2 {
		t.Errorf("tids = %v, want A-PROG:1 B-PROG:2", tidByProg)
	}

	// A nil recorder still writes valid (empty) JSON.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil || len(doc.TraceEvents) != 0 {
		t.Errorf("nil-recorder trace invalid: %v %s", err, buf.String())
	}
}
