package semantic

import (
	"strings"
	"testing"

	"progconv/internal/schema"
)

func TestPersonnelSchemaValid(t *testing.T) {
	s := PersonnelSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Entity("EMP") == nil || s.Entity("NOPE") != nil {
		t.Error("Entity lookup")
	}
	if s.Association("EMP-DEPT") == nil || s.Association("NOPE") != nil {
		t.Error("Association lookup")
	}
	if len(s.AssociationsOf("EMP")) != 1 || len(s.AssociationsOf("DEPT")) != 1 {
		t.Error("AssociationsOf")
	}
	if len(s.Between("EMP", "DEPT")) != 1 || len(s.Between("DEPT", "EMP")) != 1 {
		t.Error("Between both orientations")
	}
}

// TestSmithQueryRendering reproduces the paper's §4.1 derivation: the
// access-pattern sequence for "employees who work for Manager Smith for
// more than ten years".
func TestSmithQueryRendering(t *testing.T) {
	q := SmithQuery()
	if err := q.Validate(PersonnelSchema()); err != nil {
		t.Fatal(err)
	}
	got := q.String()
	want := "ACCESS DEPT via DEPT [MGR]\n" +
		"ACCESS EMP-DEPT via DEPT [YEAR-OF-SERVICE]\n" +
		"ACCESS EMP via EMP-DEPT\n" +
		"RETRIEVE\n"
	if got != want {
		t.Errorf("sequence:\n%s\nwant:\n%s", got, want)
	}
}

func TestViaComparableStep(t *testing.T) {
	s := PersonnelSchema()
	q := &Sequence{
		Steps: []Step{
			{Kind: ViaComparable, Target: "EMP", Via: "DEPT", Through: [2]string{"ENAME", "MGR"}},
		},
		Op: Retrieve,
	}
	if err := q.Validate(s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Steps[0].String(), "through (ENAME, MGR)") {
		t.Errorf("rendering: %s", q.Steps[0])
	}
}

func TestSchemaValidationFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Schema)
		want string
	}{
		{"dup entity", func(s *Schema) { s.Entities = append(s.Entities, &Entity{Name: "EMP"}) }, "duplicate entity"},
		{"dup field", func(s *Schema) { s.Entities[0].Fields = append(s.Entities[0].Fields, "E#") }, "duplicate field"},
		{"bad key", func(s *Schema) { s.Entities[0].Key = []string{"NOPE"} }, "key field"},
		{"dup assoc", func(s *Schema) {
			s.Associations = append(s.Associations, &Association{Name: "EMP-DEPT", Left: "EMP", Right: "DEPT"})
		}, "duplicate association"},
		{"bad assoc side", func(s *Schema) { s.Associations[0].Left = "NOPE" }, "unknown entities"},
	}
	for _, tc := range cases {
		s := PersonnelSchema()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSequenceValidationFailures(t *testing.T) {
	s := PersonnelSchema()
	cases := []struct {
		name string
		q    *Sequence
		want string
	}{
		{"unknown target", &Sequence{Steps: []Step{{Kind: ViaSelf, Target: "X", Via: "X"}}}, "unknown target"},
		{"via-self mismatch", &Sequence{Steps: []Step{{Kind: ViaSelf, Target: "EMP", Via: "DEPT"}}}, "via-self"},
		{"bad comparable via", &Sequence{Steps: []Step{{Kind: ViaComparable, Target: "EMP", Via: "NOPE"}}}, "unknown via entity"},
		{"assoc-via-side non-assoc", &Sequence{Steps: []Step{{Kind: AssocViaSide, Target: "EMP", Via: "DEPT"}}}, "not an association"},
		{"assoc-via-side bad side", &Sequence{Steps: []Step{{Kind: AssocViaSide, Target: "EMP-DEPT", Via: "EMP-DEPT"}}}, "not a side"},
		{"via-assoc non-assoc", &Sequence{Steps: []Step{{Kind: ViaAssoc, Target: "EMP", Via: "DEPT"}}}, "not an association"},
		{"discontinuous", &Sequence{Steps: []Step{
			{Kind: ViaSelf, Target: "EMP", Via: "EMP"},
			{Kind: AssocViaSide, Target: "EMP-DEPT", Via: "DEPT"},
		}}, "does not continue"},
	}
	for _, tc := range cases {
		err := tc.q.Validate(s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	// assoc-via-side with a non-side entity.
	q := &Sequence{Steps: []Step{{Kind: AssocViaSide, Target: "EMP-DEPT", Via: "EMP-DEPT"}}}
	if err := q.Validate(s); err == nil {
		t.Error("non-side via should fail")
	}
}

func TestPatternAndOpStrings(t *testing.T) {
	for k, w := range map[PatternKind]string{ViaSelf: "via-self", ViaComparable: "via-comparable",
		AssocViaSide: "assoc-via-side", ViaAssoc: "via-assoc", PatternKind(9): "?"} {
		if k.String() != w {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	for o, w := range map[Op]string{Retrieve: "RETRIEVE", Update: "UPDATE", Insert: "INSERT",
		Delete: "DELETE", Op(9): "?"} {
		if o.String() != w {
			t.Errorf("%d = %q", o, o.String())
		}
	}
}

func TestFromNetwork(t *testing.T) {
	s := FromNetwork(schema.EmpDeptNetwork())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Entity("EMP-DEPT") == nil {
		t.Error("intersection record should be an entity")
	}
	ed := s.Association("ED")
	if ed == nil || ed.Left != "DEPT" || ed.Right != "EMP-DEPT" || !ed.Dependency {
		t.Errorf("ED association = %+v", ed)
	}
	if s.Association("ALL-EMP") != nil {
		t.Error("SYSTEM sets are not associations")
	}
}

func TestNetworkPathsFigure42vs44(t *testing.T) {
	// In Figure 4.2 DIV→EMP is one hop; in Figure 4.4 it is two.
	v1, err := NetworkPaths(schema.CompanyV1(), "DIV", "EMP", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) == 0 || v1[0].Cost() != 1 || v1[0].Hops[0].Set != "DIV-EMP" || !v1[0].Hops[0].Down {
		t.Errorf("V1 paths = %v", v1)
	}
	v2, err := NetworkPaths(schema.CompanyV2(), "DIV", "EMP", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) == 0 || v2[0].Cost() != 2 {
		t.Errorf("V2 paths = %v", v2)
	}
	if v2[0].String() != "DIV-DEPT↓ DEPT-EMP↓" {
		t.Errorf("V2 route = %s", v2[0])
	}
}

func TestNetworkPathsUpHops(t *testing.T) {
	// EMP→DIV goes member→owner.
	paths, err := NetworkPaths(schema.CompanyV1(), "EMP", "DIV", 4)
	if err != nil || len(paths) == 0 {
		t.Fatal(err)
	}
	if paths[0].String() != "DIV-EMP↑" {
		t.Errorf("up route = %s", paths[0])
	}
}

func TestShortestNetworkPath(t *testing.T) {
	p, unique, err := ShortestNetworkPath(schema.CompanyV2(), "DIV", "EMP", 4)
	if err != nil || !unique || p.Cost() != 2 {
		t.Errorf("%v %v %v", p, unique, err)
	}
	// EMP→DEPT in EmpDeptNetwork has exactly one minimal route via E-ED + ED.
	p2, unique2, err := ShortestNetworkPath(schema.EmpDeptNetwork(), "EMP", "DEPT", 4)
	if err != nil || p2.Cost() != 2 {
		t.Errorf("%v %v %v", p2, unique2, err)
	}
}

func TestShortestNetworkPathAmbiguity(t *testing.T) {
	// Two parallel sets between the same pair: ambiguity.
	n := schema.CompanyV1()
	n.Sets = append(n.Sets, &schema.SetType{Name: "DIV-EMP-2", Owner: "DIV", Member: "EMP"})
	_, unique, err := ShortestNetworkPath(n, "DIV", "EMP", 3)
	if err != nil || unique {
		t.Errorf("parallel sets should be ambiguous (unique=%v, err=%v)", unique, err)
	}
}

func TestNetworkPathsErrors(t *testing.T) {
	if _, err := NetworkPaths(schema.CompanyV1(), "NOPE", "EMP", 3); err == nil {
		t.Error("unknown from")
	}
	if _, err := NetworkPaths(schema.CompanyV1(), "DIV", "NOPE", 3); err == nil {
		t.Error("unknown to")
	}
	if _, _, err := ShortestNetworkPath(schema.CompanyV1(), "NOPE", "EMP", 3); err == nil {
		t.Error("shortest unknown from")
	}
	// Disconnected: no path within budget.
	n := schema.CompanyV1()
	n.Records = append(n.Records, &schema.RecordType{Name: "LONER"})
	if _, _, err := ShortestNetworkPath(n, "DIV", "LONER", 3); err == nil {
		t.Error("no path should error")
	}
}

func TestHopString(t *testing.T) {
	if (Hop{Set: "S", Down: true}).String() != "S↓" || (Hop{Set: "S"}).String() != "S↑" {
		t.Error("Hop rendering")
	}
}
