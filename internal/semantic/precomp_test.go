package semantic

import (
	"testing"

	"progconv/internal/schema"
)

// TestPathGraphMatchesSearch: the precomputed graph answers exactly as
// the bounded breadth-first search for every record pair and bound —
// same route, same uniqueness, same error cases — including on a schema
// with ambiguous parallel shortcuts.
func TestPathGraphMatchesSearch(t *testing.T) {
	ambiguous := schema.CompanyV2()
	ambiguous.Sets = append(ambiguous.Sets,
		&schema.SetType{Name: "DIV-EMP-X", Owner: "DIV", Member: "EMP", Insertion: schema.Manual},
		&schema.SetType{Name: "DIV-EMP-Y", Owner: "DIV", Member: "EMP", Insertion: schema.Manual},
	)
	for _, n := range []*schema.Network{schema.CompanyV1(), schema.CompanyV2(), ambiguous} {
		g := NewPathGraph(n)
		for _, from := range n.Records {
			for _, to := range n.Records {
				for maxHops := 0; maxHops <= len(n.Sets)+1; maxHops++ {
					want, wantUnique, wantErr := ShortestNetworkPath(n, from.Name, to.Name, maxHops)
					got, gotUnique, gotErr := g.Shortest(from.Name, to.Name, maxHops)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s→%s maxHops=%d: err %v vs %v", from.Name, to.Name, maxHops, wantErr, gotErr)
					}
					if wantErr != nil {
						if wantErr.Error() != gotErr.Error() {
							t.Fatalf("%s→%s maxHops=%d: error text %q vs %q",
								from.Name, to.Name, maxHops, wantErr, gotErr)
						}
						continue
					}
					if want.String() != got.String() || wantUnique != gotUnique {
						t.Fatalf("%s→%s maxHops=%d: (%s, %v) vs (%s, %v)",
							from.Name, to.Name, maxHops, want, wantUnique, got, gotUnique)
					}
				}
			}
		}
	}
}

func TestPathGraphUnknownRecord(t *testing.T) {
	g := NewPathGraph(schema.CompanyV1())
	if _, _, err := g.Shortest("NOPE", "EMP", 3); err == nil {
		t.Error("unknown from record: no error")
	}
	if _, _, err := g.Shortest("EMP", "NOPE", 3); err == nil {
		t.Error("unknown to record: no error")
	}
}
