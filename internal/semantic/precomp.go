package semantic

import (
	"fmt"

	"progconv/internal/schema"
)

// PathGraph is the precomputed access-path graph of one network schema:
// the minimal route (and whether it is unique among minimal routes) for
// every ordered pair of record types. The pair-scoped conversion cache
// builds one per target schema so the bounded breadth-first search that
// ShortestNetworkPath runs per query is paid once per schema instead of
// once per program statement. A PathGraph is immutable after
// construction and safe for concurrent readers.
type PathGraph struct {
	records map[string]bool
	routes  map[[2]string]graphRoute
}

type graphRoute struct {
	path   NetPath
	unique bool
}

// NewPathGraph precomputes minimal routes between every ordered pair of
// record types. The exploration bound is len(n.Sets): routes never
// revisit a set, so no route — minimal or otherwise — is longer.
func NewPathGraph(n *schema.Network) *PathGraph {
	g := &PathGraph{
		records: make(map[string]bool, len(n.Records)),
		routes:  make(map[[2]string]graphRoute),
	}
	for _, r := range n.Records {
		g.records[r.Name] = true
	}
	bound := len(n.Sets)
	for _, from := range n.Records {
		for _, to := range n.Records {
			paths, err := NetworkPaths(n, from.Name, to.Name, bound)
			if err != nil || len(paths) == 0 {
				continue
			}
			unique := len(paths) == 1 || paths[1].Cost() > paths[0].Cost()
			g.routes[[2]string{from.Name, to.Name}] = graphRoute{path: paths[0], unique: unique}
		}
	}
	return g
}

// Shortest answers exactly as ShortestNetworkPath would for the same
// schema: the same route, the same uniqueness verdict, and the same
// errors. A bound tighter than the minimal route's cost reports "no
// path", just as the bounded search does; a looser bound cannot change
// the verdict because minimal routes (and any equal-cost rivals) always
// fall inside the precomputation bound.
func (g *PathGraph) Shortest(from, to string, maxHops int) (NetPath, bool, error) {
	if !g.records[from] {
		return NetPath{}, false, fmt.Errorf("semantic: unknown record type %s", from)
	}
	if !g.records[to] {
		return NetPath{}, false, fmt.Errorf("semantic: unknown record type %s", to)
	}
	r, ok := g.routes[[2]string{from, to}]
	if !ok || r.path.Cost() > maxHops {
		return NetPath{}, false, fmt.Errorf("semantic: no path from %s to %s", from, to)
	}
	return r.path, r.unique, nil
}
