package semantic

import (
	"fmt"
	"sort"

	"progconv/internal/schema"
)

// FromNetwork derives a semantic schema from a network schema: record
// types become entities (stored fields only) and every non-SYSTEM set
// becomes an association whose dependency property mirrors MANDATORY
// retention. This is the Conversion Analyzer's first move: encode the
// database description "in suitable internal representations".
func FromNetwork(n *schema.Network) *Schema {
	s := &Schema{Name: n.Name}
	for _, r := range n.Records {
		e := &Entity{Name: r.Name, Fields: r.StoredFieldNames()}
		s.Entities = append(s.Entities, e)
	}
	for _, t := range n.Sets {
		if t.IsSystem() {
			continue
		}
		s.Associations = append(s.Associations, &Association{
			Name:       t.Name,
			Left:       t.Owner,
			Right:      t.Member,
			Dependency: t.Retention == schema.Mandatory,
		})
	}
	return s
}

// Hop is one set traversal in a network access path. Down means
// owner→member; up means member→owner (FIND OWNER).
type Hop struct {
	Set  string
	Down bool
}

func (h Hop) String() string {
	if h.Down {
		return h.Set + "↓"
	}
	return h.Set + "↑"
}

// NetPath is one way to reach a record type from another through sets:
// an access-path-graph route with its cost (hop count).
type NetPath struct {
	Hops []Hop
}

// Cost is the path length; the optimizer prefers shorter routes.
func (p NetPath) Cost() int { return len(p.Hops) }

func (p NetPath) String() string {
	out := ""
	for i, h := range p.Hops {
		if i > 0 {
			out += " "
		}
		out += h.String()
	}
	return out
}

// NetworkPaths enumerates the routes from record type `from` to record
// type `to` through the schema's sets, shortest first, up to maxHops.
// More than one minimal route is the "multiple data paths" ambiguity the
// Supervisor surfaces to the Conversion Analyst.
func NetworkPaths(n *schema.Network, from, to string, maxHops int) ([]NetPath, error) {
	if n.Record(from) == nil {
		return nil, fmt.Errorf("semantic: unknown record type %s", from)
	}
	if n.Record(to) == nil {
		return nil, fmt.Errorf("semantic: unknown record type %s", to)
	}
	type state struct {
		at   string
		path []Hop
	}
	var out []NetPath
	queue := []state{{at: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.at == to && len(cur.path) > 0 {
			out = append(out, NetPath{Hops: cur.path})
			continue // do not extend past the target
		}
		if len(cur.path) >= maxHops {
			continue
		}
		seen := func(set string) bool {
			for _, h := range cur.path {
				if h.Set == set {
					return true
				}
			}
			return false
		}
		for _, t := range n.Sets {
			if t.IsSystem() || seen(t.Name) {
				continue
			}
			if t.Owner == cur.at {
				queue = append(queue, state{
					at:   t.Member,
					path: append(append([]Hop(nil), cur.path...), Hop{Set: t.Name, Down: true}),
				})
			}
			if t.Member == cur.at {
				queue = append(queue, state{
					at:   t.Owner,
					path: append(append([]Hop(nil), cur.path...), Hop{Set: t.Name, Down: false}),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost() < out[j].Cost() })
	return out, nil
}

// ShortestNetworkPath returns the minimal route and whether it is unique
// among minimal routes. Non-uniqueness is an Analyst decision point.
func ShortestNetworkPath(n *schema.Network, from, to string, maxHops int) (NetPath, bool, error) {
	paths, err := NetworkPaths(n, from, to, maxHops)
	if err != nil {
		return NetPath{}, false, err
	}
	if len(paths) == 0 {
		return NetPath{}, false, fmt.Errorf("semantic: no path from %s to %s", from, to)
	}
	unique := len(paths) == 1 || paths[1].Cost() > paths[0].Cost()
	return paths[0], unique, nil
}
