// Package semantic implements the high-level data model of §4.1 (Su,
// University of Florida): entity types and associations with explicit
// operational characteristics and integrity properties, and the four
// basic access patterns in terms of which application-program data
// traversals are described:
//
//	ACCESS A via A                     — entry by the entity's own fields
//	ACCESS A via B through (Ai, Bj)    — relate unassociated entities by
//	                                     comparable fields
//	ACCESS AB via B                    — association occurrences from one
//	                                     side's condition
//	ACCESS A via AB                    — entities from association
//	                                     occurrences
//
// A sequence of these patterns, ending in an operation (RETRIEVE, ...),
// is the data-model-independent representation of a program's traversal;
// "since the conversion takes place at a level of abstraction that is
// removed from an actual DBMS language, conversion from one DBMS to
// another ... is possible."
package semantic

import (
	"fmt"
	"strings"
)

// Entity is an entity type: EMP(E#, ENAME, AGE).
type Entity struct {
	Name   string
	Fields []string
	Key    []string
}

// Association relates two entity types and may carry its own attributes:
// EMP-DEPT(E#, D#, YEAR-OF-SERVICE). Dependency marks the paper's
// "characterizing entity" semantics: Right instances depend on Left
// ("deletion of an employee implies deletion of dependents").
type Association struct {
	Name       string
	Left       string
	Right      string
	Attrs      []string
	Dependency bool
	// MaxRight bounds how many Right instances may attach to one Left
	// instance (0 = unbounded): the "numeric limits on relationship
	// participation" of §3.1.
	MaxRight int
}

// Schema is a semantic schema: the "database description" of Figure 4.1
// at the level above any particular data model.
type Schema struct {
	Name         string
	Entities     []*Entity
	Associations []*Association
}

// Entity returns the named entity type, or nil.
func (s *Schema) Entity(name string) *Entity {
	for _, e := range s.Entities {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Association returns the named association, or nil.
func (s *Schema) Association(name string) *Association {
	for _, a := range s.Associations {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AssociationsOf returns every association touching the entity.
func (s *Schema) AssociationsOf(entity string) []*Association {
	var out []*Association
	for _, a := range s.Associations {
		if a.Left == entity || a.Right == entity {
			out = append(out, a)
		}
	}
	return out
}

// Between returns the associations linking two entities, in either
// orientation. More than one result is precisely the "multiple data
// paths" situation the Conversion Supervisor resolves interactively.
func (s *Schema) Between(a, b string) []*Association {
	var out []*Association
	for _, x := range s.Associations {
		if (x.Left == a && x.Right == b) || (x.Left == b && x.Right == a) {
			out = append(out, x)
		}
	}
	return out
}

// Validate checks internal consistency.
func (s *Schema) Validate() error {
	ents := map[string]bool{}
	for _, e := range s.Entities {
		if ents[e.Name] {
			return fmt.Errorf("semantic: duplicate entity %s", e.Name)
		}
		ents[e.Name] = true
		fields := map[string]bool{}
		for _, f := range e.Fields {
			if fields[f] {
				return fmt.Errorf("semantic: entity %s: duplicate field %s", e.Name, f)
			}
			fields[f] = true
		}
		for _, k := range e.Key {
			if !fields[k] {
				return fmt.Errorf("semantic: entity %s: key field %s not declared", e.Name, k)
			}
		}
	}
	assocs := map[string]bool{}
	for _, a := range s.Associations {
		if assocs[a.Name] {
			return fmt.Errorf("semantic: duplicate association %s", a.Name)
		}
		assocs[a.Name] = true
		if !ents[a.Left] || !ents[a.Right] {
			return fmt.Errorf("semantic: association %s links unknown entities %s-%s", a.Name, a.Left, a.Right)
		}
	}
	return nil
}

// PatternKind is one of the four basic access patterns.
type PatternKind uint8

// The four access patterns of §4.1, plus the terminating operation.
const (
	ViaSelf       PatternKind = iota // ACCESS A via A
	ViaComparable                    // ACCESS A via B through (Ai, Bj)
	AssocViaSide                     // ACCESS AB via B
	ViaAssoc                         // ACCESS A via AB
)

func (k PatternKind) String() string {
	switch k {
	case ViaSelf:
		return "via-self"
	case ViaComparable:
		return "via-comparable"
	case AssocViaSide:
		return "assoc-via-side"
	case ViaAssoc:
		return "via-assoc"
	}
	return "?"
}

// Op is the operation terminating an access sequence.
type Op uint8

// Sequence-terminating operations.
const (
	Retrieve Op = iota
	Update
	Insert
	Delete
)

func (o Op) String() string {
	switch o {
	case Retrieve:
		return "RETRIEVE"
	case Update:
		return "UPDATE"
	case Insert:
		return "INSERT"
	case Delete:
		return "DELETE"
	}
	return "?"
}

// Step is one access pattern in a sequence. Target is what is accessed
// (entity or association); Via is what constrains the access; Through
// holds the comparable-field pair for ViaComparable. CondFields are the
// fields the step's data condition mentions, which is what the converter
// needs to know (the condition's value logic travels with the host
// program).
type Step struct {
	Kind       PatternKind
	Target     string
	Via        string
	Through    [2]string
	CondFields []string
}

// String renders the step in the paper's ACCESS notation.
func (st Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ACCESS %s via %s", st.Target, st.Via)
	if st.Kind == ViaComparable {
		fmt.Fprintf(&b, " through (%s, %s)", st.Through[0], st.Through[1])
	}
	if len(st.CondFields) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(st.CondFields, ", "))
	}
	return b.String()
}

// Sequence is a complete data traversal: access steps ending in an
// operation, as in the paper's worked derivation.
type Sequence struct {
	Steps []Step
	Op    Op
}

// String renders the sequence one pattern per line, ending with the
// operation, matching the paper's layout:
//
//	ACCESS DEPT via DEPT
//	ACCESS EMP-DEPT via DEPT
//	ACCESS EMP via EMP-DEPT
//	RETRIEVE
func (q *Sequence) String() string {
	var b strings.Builder
	for _, st := range q.Steps {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	b.WriteString(q.Op.String())
	b.WriteByte('\n')
	return b.String()
}

// Validate checks a sequence against a schema: every step's names exist
// and each step's Via is reachable from the previous step's Target.
func (q *Sequence) Validate(s *Schema) error {
	prev := ""
	for i, st := range q.Steps {
		isEnt := s.Entity(st.Target) != nil
		isAssoc := s.Association(st.Target) != nil
		if !isEnt && !isAssoc {
			return fmt.Errorf("semantic: step %d: unknown target %s", i, st.Target)
		}
		switch st.Kind {
		case ViaSelf:
			if st.Via != st.Target {
				return fmt.Errorf("semantic: step %d: via-self must access %s via itself", i, st.Target)
			}
		case ViaComparable:
			if s.Entity(st.Via) == nil {
				return fmt.Errorf("semantic: step %d: unknown via entity %s", i, st.Via)
			}
		case AssocViaSide:
			a := s.Association(st.Target)
			if a == nil {
				return fmt.Errorf("semantic: step %d: %s is not an association", i, st.Target)
			}
			if st.Via != a.Left && st.Via != a.Right {
				return fmt.Errorf("semantic: step %d: %s is not a side of %s", i, st.Via, st.Target)
			}
		case ViaAssoc:
			a := s.Association(st.Via)
			if a == nil {
				return fmt.Errorf("semantic: step %d: %s is not an association", i, st.Via)
			}
			if st.Target != a.Left && st.Target != a.Right {
				return fmt.Errorf("semantic: step %d: %s is not a side of %s", i, st.Target, st.Via)
			}
		}
		if i > 0 && st.Kind != ViaSelf && st.Kind != ViaComparable && st.Via != prev {
			return fmt.Errorf("semantic: step %d: via %s does not continue from %s", i, st.Via, prev)
		}
		prev = st.Target
	}
	return nil
}

// PersonnelSchema is the §4.1 example: EMP, DEPT and the EMP-DEPT
// association with YEAR-OF-SERVICE.
func PersonnelSchema() *Schema {
	return &Schema{
		Name: "PERSONNEL",
		Entities: []*Entity{
			{Name: "EMP", Fields: []string{"E#", "ENAME", "AGE"}, Key: []string{"E#"}},
			{Name: "DEPT", Fields: []string{"D#", "DNAME", "MGR"}, Key: []string{"D#"}},
		},
		Associations: []*Association{
			{Name: "EMP-DEPT", Left: "DEPT", Right: "EMP", Attrs: []string{"YEAR-OF-SERVICE"}},
		},
	}
}

// SmithQuery is the paper's worked example: "Find the names of employees
// who work for Manager Smith for more than ten years."
func SmithQuery() *Sequence {
	return &Sequence{
		Steps: []Step{
			{Kind: ViaSelf, Target: "DEPT", Via: "DEPT", CondFields: []string{"MGR"}},
			{Kind: AssocViaSide, Target: "EMP-DEPT", Via: "DEPT", CondFields: []string{"YEAR-OF-SERVICE"}},
			{Kind: ViaAssoc, Target: "EMP", Via: "EMP-DEPT"},
		},
		Op: Retrieve,
	}
}
