// Company: the paper's flagship conversion — Figure 4.2's COMPANY schema
// restructured into Figure 4.4, with a whole application system carried
// across by the Conversion Supervisor. The .ddl and .prog files beside
// this program drive the same conversion through the progconv CLI:
//
//	go run ./examples/company
//	go run ./cmd/progconv diff examples/company/company-v1.ddl examples/company/company-v2.ddl
//	go run ./cmd/progconv convert examples/company/company-v1.ddl examples/company/company-v2.ddl examples/company/roster.prog
package main

import (
	"context"
	"fmt"
	"log"

	"progconv/internal/core"
	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func main() {
	// The source application system: database plus its programs.
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
		{"TEXTILES", "EVANS", "LOOMS", 24},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}

	programs := []*dbprog.Program{
		parse(`
PROGRAM OLDER-STAFF DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E, DIV-NAME IN E.
  END-FOR.
END PROGRAM.
`),
		parse(`
PROGRAM MACHINERY-SALES DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`),
		parse(`
PROGRAM HEADCOUNT DIALECT NETWORK.
  LET N = 0.
  MOVE 'TEXTILES' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'TEXTILES HEADCOUNT', N.
END PROGRAM.
`),
	}

	// The Supervisor classifies the Figure 4.2→4.4 change, restructures
	// the data, converts each program, optimizes, and verifies.
	sup := core.NewSupervisor()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db, programs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\nconverted MACHINERY-SALES (the paper's example 2 rewrite):")
	for _, o := range report.Outcomes {
		if o.Name == "MACHINERY-SALES" && o.Converted != nil {
			fmt.Print(dbprog.Format(o.Converted))
		}
	}
}

func parse(src string) *dbprog.Program {
	p, err := dbprog.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
