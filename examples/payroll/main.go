// Payroll: the §4.1 (University of Florida) programme — a query's
// traversal lifted to the data-model-independent access-pattern sequence,
// then realized as the paper's SEQUEL template (A) and CODASYL template
// (B), both executed over the same logical data.
//
//	go run ./examples/payroll
package main

import (
	"context"
	"fmt"
	"log"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/generator"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/sequel"
	"progconv/internal/value"
)

var staff = []struct {
	e, ename string
	age      int
	d, dname string
	mgr      string
	yos      int
}{
	{"E1", "BAKER", 28, "D2", "SALES", "SMITH", 3},
	{"E2", "CLARK", 33, "D2", "SALES", "SMITH", 11},
	{"E3", "ADAMS", 45, "D12", "ACCOUNTING", "JONES", 3},
	{"E4", "EVANS", 51, "D2", "SALES", "SMITH", 14},
}

func main() {
	sem := semantic.PersonnelSchema()

	// 1. The paper's worked example, as the query a programmer wrote.
	q, err := sequel.ParseQuery(`
SELECT ENAME FROM EMP WHERE E# IN
  (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN
    (SELECT D# FROM DEPT WHERE MGR = 'SMITH'))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query: employees who work for Manager Smith for more than ten years")

	// 2. The Program Analyzer lifts it to the access-pattern sequence.
	seq, err := analyzer.DeriveSequence(context.Background(), q, sem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderived access-pattern sequence (§4.1):")
	fmt.Print(seq)

	// 3. The Program Generator realizes the sequence in both data models.
	bind := generator.Binding{
		{Field: "MGR", Op: "=", V: value.Str("SMITH")},
		{Field: "YEAR-OF-SERVICE", Op: ">", V: value.Of(10)},
	}
	sq, err := generator.ToSequel(context.Background(), seq, sem, bind, []string{"ENAME"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntemplate (A), SEQUEL realization:")
	fmt.Println(" ", sq)

	prog, err := generator.ToNetworkProgram(context.Background(), "SMITH-TENURE", seq, sem,
		schema.EmpDeptNetwork(), bind, []string{"ENAME"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntemplate (B), CODASYL realization:")
	fmt.Print(dbprog.Format(prog))

	// 4. Both run over the same logical data and agree.
	parsed, _ := sequel.ParseQuery(sq)
	rows, err := sequel.Exec(relationalData(), parsed, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswers from the relational realization:")
	for _, r := range rows {
		fmt.Println(" ", r.MustGet("ENAME"))
	}
	trace, err := dbprog.Run(prog, dbprog.Config{Net: networkData()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers from the network realization:")
	for _, e := range trace.Events {
		fmt.Println(" ", e.Text)
	}
}

func relationalData() *relstore.DB {
	db := relstore.NewDB(schema.EmpDeptRelational())
	seen := map[string]bool{}
	for _, r := range staff {
		db.Insert("EMP", value.FromPairs("E#", r.e, "ENAME", r.ename, "AGE", r.age))
		if !seen[r.d] {
			seen[r.d] = true
			db.Insert("DEPT", value.FromPairs("D#", r.d, "DNAME", r.dname, "MGR", r.mgr))
		}
		db.Insert("EMP-DEPT", value.FromPairs("E#", r.e, "D#", r.d, "YEAR-OF-SERVICE", r.yos))
	}
	return db
}

func networkData() *netstore.DB {
	db := netstore.NewDB(schema.EmpDeptNetwork())
	s := netstore.NewSession(db)
	seen := map[string]bool{}
	for _, r := range staff {
		s.Store("EMP", value.FromPairs("E#", r.e, "ENAME", r.ename, "AGE", r.age))
		if !seen[r.d] {
			seen[r.d] = true
			s.Store("DEPT", value.FromPairs("D#", r.d, "DNAME", r.dname, "MGR", r.mgr))
		}
		s.FindAny("EMP", value.FromPairs("E#", r.e))
		s.FindAny("DEPT", value.FromPairs("D#", r.d))
		s.Store("EMP-DEPT", value.FromPairs("E#", r.e, "D#", r.d, "YEAR-OF-SERVICE", r.yos))
	}
	return db
}
