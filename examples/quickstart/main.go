// Quickstart: convert one database program across one schema
// restructuring and verify it "runs equivalently" (§1.1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"progconv/internal/convert"
	"progconv/internal/dbprog"
	"progconv/internal/equiv"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func main() {
	// 1. The source database: Figure 4.2's COMPANY schema, populated.
	src := netstore.NewDB(schema.CompanyV1())
	sess := netstore.NewSession(src)
	sess.Store("DIV", value.FromPairs("DIV-NAME", "MACHINERY", "DIV-LOC", "DETROIT"))
	for _, e := range []struct {
		name, dept string
		age        int
	}{
		{"ADAMS", "SALES", 45}, {"BAKER", "SALES", 28}, {"CLARK", "WELDING", 33},
	} {
		sess.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
		sess.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}

	// 2. A database program written against that schema.
	prog, err := dbprog.Parse(`
PROGRAM SALES-ROSTER DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO SALES.
  FOR EACH E IN SALES
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The restructuring: Figure 4.2 → Figure 4.4 (departments become
	// records between divisions and employees).
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}

	// 4. Convert the data and the program.
	target, err := plan.MigrateData(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := convert.Convert(prog, src.Schema(), plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converted program:")
	fmt.Print(dbprog.Format(res.Program))

	// 5. Verify the conversion operationally: identical non-database I/O.
	verdict := equiv.Check(
		prog, dbprog.Config{Net: src},
		res.Program, dbprog.Config{Net: target})
	fmt.Printf("\nI/O equivalent: %v\n", verdict.Equal)
	fmt.Println("\noutput on the restructured database:")
	fmt.Print(verdict.Target)
}
