// Quickstart: convert one database program across one schema
// restructuring through the public progconv API and verify it "runs
// equivalently" (§1.1).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"progconv"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func main() {
	// 1. The source database: Figure 4.2's COMPANY schema, populated.
	src := netstore.NewDB(schema.CompanyV1())
	sess := netstore.NewSession(src)
	sess.Store("DIV", value.FromPairs("DIV-NAME", "MACHINERY", "DIV-LOC", "DETROIT"))
	for _, e := range []struct {
		name, dept string
		age        int
	}{
		{"ADAMS", "SALES", 45}, {"BAKER", "SALES", 28}, {"CLARK", "WELDING", 33},
	} {
		sess.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
		sess.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}

	// 2. A database program written against that schema.
	prog, err := progconv.ParseProgram(`
PROGRAM SALES-ROSTER DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO SALES.
  FOR EACH E IN SALES
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The restructuring: Figure 4.2 → Figure 4.4 (departments become
	// records between divisions and employees).
	plan := &progconv.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}

	// 4. One call converts the data and the program, and verifies the
	// conversion operationally: identical non-database I/O.
	report, err := progconv.Convert(context.Background(),
		src.Schema(), nil, plan, []*progconv.Program{prog},
		progconv.WithVerifyDB(src), progconv.WithMetrics())
	if err != nil {
		log.Fatal(err)
	}
	o := report.Outcomes[0]
	fmt.Println("converted program:")
	fmt.Print(o.Generated)
	fmt.Printf("\ndisposition: %s\n", o.Disposition)
	fmt.Printf("I/O equivalent: %v\n", o.Verified.Equal)
	fmt.Println("\noutput on the restructured database:")
	fmt.Print(o.Verified.Target)
	fmt.Printf("\n%s", report.Metrics)
}
