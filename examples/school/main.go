// School: the paper's §3.1 integrity discussion on the Figure 3.1
// database — what each 1979 model enforces, what only programs enforce,
// and what a centralized constraint subsystem recovers.
//
//	go run ./examples/school
package main

import (
	"fmt"

	"progconv/internal/constraint"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func main() {
	fmt.Println("Figure 3.1a — relational school database")
	fmt.Println("----------------------------------------")
	rel := relstore.NewDB(schema.SchoolRelational())
	rel.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Databases"))
	rel.Insert("SEMESTER", value.FromPairs("S", "F78", "YEAR", 1978))
	rel.Insert("SEMESTER", value.FromPairs("S", "W78", "YEAR", 1978))
	rel.Insert("SEMESTER", value.FromPairs("S", "S78", "YEAR", 1978))

	// "The only constraint maintained explicitly in the relational model
	// is tuple uniqueness (by means of key declarations)."
	err := rel.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Duplicate"))
	fmt.Printf("duplicate key insert: %v\n", err)

	// Existence is NOT maintained: the dangling offering is admitted.
	err = rel.Insert("COURSE-OFFERING", value.FromPairs("CNO", "GHOST", "S", "F78", "INSTRUCTOR", "X"))
	fmt.Printf("dangling offering (FKs off, the 1979 default): err=%v\n", err)

	fmt.Println("\nFigure 3.1b — CODASYL school database")
	fmt.Println("--------------------------------------")
	net := netstore.NewDB(schema.SchoolNetwork())
	ns := netstore.NewSession(net)
	ns.Store("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Databases"))
	ns.Store("SEMESTER", value.FromPairs("S", "F78", "YEAR", 1978))

	// AUTOMATIC/MANDATORY membership captures the existence constraint:
	// "if an attempt is made to insert a course offering for which there
	// is either no corresponding course or semester, the insertion will
	// fail."
	fresh := netstore.NewSession(net)
	_, st, _ := fresh.Store("COURSE-OFFERING",
		value.FromPairs("CNO", "CS101", "S", "F78", "INSTRUCTOR", "Taylor"))
	fmt.Printf("offering stored with no owner currency: DB-STATUS %v\n", st)

	ns.FindAny("COURSE", value.FromPairs("CNO", "CS101"))
	ns.FindAny("SEMESTER", value.FromPairs("S", "F78"))
	_, st, _ = ns.Store("COURSE-OFFERING",
		value.FromPairs("CNO", "CS101", "S", "F78", "INSTRUCTOR", "Taylor"))
	fmt.Printf("offering stored with both owners current: DB-STATUS %v\n", st)

	// "Database inconsistency may still occur due to the operation of the
	// DELETE (ERASE) command": erasing the course cascades MANDATORY
	// offerings away.
	ns.FindAny("COURSE", value.FromPairs("CNO", "CS101"))
	ns.Erase("COURSE")
	fmt.Printf("after ERASE COURSE: offerings left = %d (cascaded)\n", net.Count("COURSE-OFFERING"))

	fmt.Println("\nThe rule no 1979 model holds")
	fmt.Println("-----------------------------")
	// "A course may not be offered more than twice in a school year ...
	// a constraint like this could only be maintained by user programs."
	rel2 := relstore.NewDB(schema.SchoolRelational())
	rel2.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Databases"))
	for _, s := range []string{"F78", "W78", "S78"} {
		rel2.Insert("SEMESTER", value.FromPairs("S", s, "YEAR", 1978))
		rel2.Insert("COURSE-OFFERING", value.FromPairs("CNO", "CS101", "S", s, "INSTRUCTOR", "T"))
	}
	fmt.Println("three offerings of CS101 in 1978 admitted by the engine;")
	fmt.Println("the centralized constraint subsystem (§3.1's proposal) reports:")
	for _, v := range constraint.CheckAll(constraint.SchoolRules(), constraint.FromRelational(rel2)) {
		fmt.Printf("  %s\n", v)
	}
}
