// IMS reorder: the Mehl & Wang study from §2.2 — "a change in the
// hierarchical order of an IMS structure" — end to end: the DEPT→EMP
// hierarchy is inverted to EMP→DEPT, the database is migrated, and the
// corpus.IMSReorder inventory's old-order calls run against the new
// order through the command substitution rules.
//
//	go run ./examples/imsreorder
package main

import (
	"fmt"
	"log"

	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/hierstore"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func main() {
	// The named corpus entry: the DEPT→EMP pair, its seed population,
	// and the study's program inventory.
	entry, err := corpus.IMSReorder()
	if err != nil {
		log.Fatal(err)
	}
	db := entry.Seed()
	fmt.Println("source hierarchy (DEPT → EMP):")
	fmt.Print(db.DumpSequence())

	// The study's old-order program, written against DEPT→EMP: the
	// tenured-employee sweep (corpus kind hier-gnp).
	var oldProgram *dbprog.Program
	for _, m := range entry.Members {
		if m.Kind == corpus.HierGNP {
			oldProgram = m.Program
		}
	}
	before, err := dbprog.Run(oldProgram, dbprog.Config{Hier: db.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nold program on the old order:")
	fmt.Print(before)

	// The Mehl & Wang transformation: promote EMP to the root. The
	// corpus target schema is this same promotion applied to the source.
	tr := xform.HierReorder{Promote: "EMP"}
	reordered, warnings, err := tr.MigrateData(db, entry.Target)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range warnings {
		fmt.Println("migration warning:", w)
	}
	fmt.Println("\nreordered hierarchy (EMP → DEPT):")
	fmt.Print(reordered.DumpSequence())

	// The old program's calls, run through the substitution rules. A
	// parent-targeted path rewrites directly; a child-targeted path with a
	// parent qualification needs the emulated command sequence — the very
	// complication §2.1.2 charges to the emulation strategy.
	sess := hierstore.NewSession(reordered)
	oldPath := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D2")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.GT, value.Of(10)),
	}
	rec, st := tr.EmulateGU(sess, "DEPT", oldPath)
	fmt.Println("\nold-order call DEPT(D#='D2'), EMP(YOS>10) via command substitution:")
	fmt.Printf("  status %v, answer %s\n", st, rec.MustGet("ENAME"))

	pairs, err := tr.ReorderedValueEqual(db, reordered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigration fidelity: all %d (department, employee) pairs preserved\n", pairs)
}
