// IMS reorder: the Mehl & Wang study from §2.2 — "a change in the
// hierarchical order of an IMS structure" — end to end: the DEPT→EMP
// hierarchy is inverted to EMP→DEPT, the database is migrated, and an
// old-order program's calls run against the new order through the
// command substitution rules.
//
//	go run ./examples/imsreorder
package main

import (
	"fmt"
	"log"

	"progconv/internal/dbprog"
	"progconv/internal/hierstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func main() {
	// The source hierarchy: departments with employee children.
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	for _, d := range []struct{ d, n, m string }{
		{"D2", "SALES", "SMITH"}, {"D12", "ACCOUNTING", "JONES"},
	} {
		s.ISRT(value.FromPairs("D#", d.d, "DNAME", d.n, "MGR", d.m), hierstore.U("DEPT"))
	}
	for _, e := range []struct {
		dept, e, n string
		yos        int
	}{
		{"D2", "E1", "BAKER", 3}, {"D2", "E2", "CLARK", 11}, {"D12", "E3", "ADAMS", 3},
	} {
		s.ISRT(value.FromPairs("E#", e.e, "ENAME", e.n, "AGE", 30, "YEAR-OF-SERVICE", e.yos),
			hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str(e.dept)), hierstore.U("EMP"))
	}
	fmt.Println("source hierarchy (DEPT → EMP):")
	fmt.Print(db.DumpSequence())

	// An old-order program, written against DEPT→EMP.
	oldProgram, err := dbprog.Parse(`
PROGRAM TENURED DIALECT DLI.
  GU DEPT(D# = 'D2').
  PRINT 'DEPARTMENT', DNAME IN DEPT.
  PERFORM UNTIL DB-STATUS <> 'OK'
    GNP EMP(YEAR-OF-SERVICE > 10).
    IF DB-STATUS = 'OK'
      PRINT 'TENURED', ENAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	if err != nil {
		log.Fatal(err)
	}
	before, err := dbprog.Run(oldProgram, dbprog.Config{Hier: db.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nold program on the old order:")
	fmt.Print(before)

	// The Mehl & Wang transformation: promote EMP to the root.
	tr := xform.HierReorder{Promote: "EMP"}
	newSchema, err := tr.ApplySchema(db.Schema())
	if err != nil {
		log.Fatal(err)
	}
	reordered, warnings, err := tr.MigrateData(db, newSchema)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range warnings {
		fmt.Println("migration warning:", w)
	}
	fmt.Println("\nreordered hierarchy (EMP → DEPT):")
	fmt.Print(reordered.DumpSequence())

	// The old program's calls, run through the substitution rules. A
	// parent-targeted path rewrites directly; a child-targeted path with a
	// parent qualification needs the emulated command sequence — the very
	// complication §2.1.2 charges to the emulation strategy.
	sess := hierstore.NewSession(reordered)
	oldPath := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D2")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.GT, value.Of(10)),
	}
	rec, st := tr.EmulateGU(sess, "DEPT", oldPath)
	fmt.Println("\nold-order call DEPT(D#='D2'), EMP(YOS>10) via command substitution:")
	fmt.Printf("  status %v, answer %s\n", st, rec.MustGet("ENAME"))

	pairs, err := tr.ReorderedValueEqual(db, reordered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigration fidelity: all %d (department, employee) pairs preserved\n", pairs)
}
