package progconv

// One benchmark per experiment in EXPERIMENTS.md (the paper has no
// measured tables; each benchmark backs the synthetic experiment that
// reproduces a figure, worked example, or quantitative claim — see
// DESIGN.md §3). Run:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"progconv/internal/analyzer"
	"progconv/internal/bridge"
	"progconv/internal/constraint"
	"progconv/internal/convert"
	"progconv/internal/core"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/emulate"
	"progconv/internal/generator"
	"progconv/internal/hierstore"
	"progconv/internal/mdml"
	"progconv/internal/netstore"
	"progconv/internal/optimizer"
	"progconv/internal/plancache"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/sequel"
	"progconv/internal/telemetry"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func mustParse(b *testing.B, src string) *dbprog.Program {
	b.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSchoolConstraints backs EXP-F3.1: evaluating the §3.1 rules
// (existence, uniqueness, the twice-per-year limit) over a populated
// school database.
func BenchmarkSchoolConstraints(b *testing.B) {
	db := relstore.NewDB(schema.SchoolRelational())
	for c := 0; c < 50; c++ {
		db.Insert("COURSE", value.FromPairs("CNO", fmt.Sprintf("C%03d", c), "CNAME", "X"))
	}
	for s := 0; s < 12; s++ {
		db.Insert("SEMESTER", value.FromPairs("S", fmt.Sprintf("S%02d", s), "YEAR", 1975+s/3))
	}
	for c := 0; c < 50; c++ {
		for s := 0; s < 4; s++ {
			db.Insert("COURSE-OFFERING", value.FromPairs(
				"CNO", fmt.Sprintf("C%03d", c), "S", fmt.Sprintf("S%02d", (c+s*3)%12), "INSTRUCTOR", "T"))
		}
	}
	rules := constraint.SchoolRules()
	inst := constraint.FromRelational(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		constraint.CheckAll(rules, inst)
	}
}

// BenchmarkPipeline backs EXP-F4.1: the full supervisor run (classify,
// migrate, convert, optimize, verify) over a small application system.
// The supervisor's worker pool defaults to GOMAXPROCS, so
//
//	go test -bench=Pipeline -cpu 1,4,8
//
// measures the batch engine's scaling directly.
func BenchmarkPipeline(b *testing.B) {
	progs := []*dbprog.Program{
		mustParse(b, `
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`),
		mustParse(b, `
PROGRAM COUNT DIALECT NETWORK.
  LET N = 0.
  MOVE 'DIV-00' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT N.
END PROGRAM.
`),
	}
	db := corpus.Database(corpus.Profile{Seed: 1, Divisions: 2, DeptsPerDiv: 2, EmpsPerDept: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup := core.NewSupervisor()
		if _, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db.Clone(), progs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvert backs EXP-O1: the full end-to-end conversion the
// daemon runs per job — analyze through verify against a populated
// source database — with no telemetry installed. This is the baseline
// the instrumented variant is compared to.
func BenchmarkConvert(b *testing.B) {
	progs, db := convertBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Convert(context.Background(), schema.CompanyV1(), schema.CompanyV2(),
			nil, progs, WithParallelism(1), WithVerifyDB(db.Clone())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertTraced is the same conversion with the full telemetry
// plane installed: trace builder, stage-latency sink, and tally — the
// daemon's per-job instrumentation. EXP-O1's target is <3% overhead
// over BenchmarkConvert.
func BenchmarkConvertTraced(b *testing.B) {
	progs, db := convertBenchWorkload(b)
	reg := telemetry.NewRegistry()
	inst := telemetry.NewInstruments(reg)
	tally := NewTally()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTraceBuilder(DeriveTraceID("bench"), "convert")
		report, err := Convert(context.Background(), schema.CompanyV1(), schema.CompanyV2(),
			nil, progs, WithParallelism(1), WithVerifyDB(db.Clone()),
			WithTraceSink(tb), WithEventSink(MultiSink(tally, inst.StageSink())))
		if err != nil {
			b.Fatal(err)
		}
		inst.ObserveDataPlane(report.DataPlane)
	}
}

// convertBenchWorkload is the Figure 4.3 job set with a populated
// corpus database for verification — the shape of a real daemon job.
func convertBenchWorkload(b *testing.B) ([]*Program, *netstore.DB) {
	progs := []*Program{
		mustParse(b, `
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`),
		mustParse(b, `
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'DIV-00' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`),
	}
	db := corpus.Database(corpus.Profile{Seed: 1, Divisions: 4, DeptsPerDiv: 3, EmpsPerDept: 6})
	return progs, db
}

// BenchmarkMarylandFind backs EXP-F4.3: evaluating the paper's §4.2 FIND
// examples against the Figure 4.2 database.
func BenchmarkMarylandFind(b *testing.B) {
	db := corpus.Database(corpus.Profile{Seed: 1, Divisions: 6, DeptsPerDiv: 4, EmpsPerDept: 10})
	ev := mdml.NewEvaluator(db)
	f, err := mdml.ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindConversion backs EXP-F4.4: converting the paper's FIND
// programs across the Figure 4.2→4.4 restructuring.
func BenchmarkFindConversion(b *testing.B) {
	p := mustParse(b, `
PROGRAM EX2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	src := schema.CompanyV1()
	plan := figurePlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := convert.Convert(context.Background(), p, src, plan)
		if err != nil || !res.Auto {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessPatternDerivation backs EXP-S4.1a: deriving the §4.1
// access-pattern sequence from the nested query.
func BenchmarkAccessPatternDerivation(b *testing.B) {
	q, err := sequel.ParseQuery(`
SELECT ENAME FROM EMP WHERE E# IN
  (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN
    (SELECT D# FROM DEPT WHERE MGR = 'SMITH'))`)
	if err != nil {
		b.Fatal(err)
	}
	sem := semantic.PersonnelSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.DeriveSequence(context.Background(), q, sem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemplateSynthesis backs EXP-S4.1b: realizing one sequence as
// SEQUEL and as a CODASYL program.
func BenchmarkTemplateSynthesis(b *testing.B) {
	sem := semantic.PersonnelSchema()
	seq := semantic.SmithQuery()
	bind := generator.Binding{
		{Field: "MGR", Op: "=", V: value.Str("SMITH")},
		{Field: "YEAR-OF-SERVICE", Op: ">", V: value.Of(10)},
	}
	net := schema.EmpDeptNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generator.ToSequel(context.Background(), seq, sem, bind, []string{"ENAME"}); err != nil {
			b.Fatal(err)
		}
		if _, err := generator.ToNetworkProgram(context.Background(), "B", seq, sem, net, bind, []string{"ENAME"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusConversion backs EXP-C1: the supervisor over the
// 100-program period-realistic inventory. Like BenchmarkPipeline it
// inherits the pool size from GOMAXPROCS; run with -cpu 1,4,8 to see
// the throughput scaling of the concurrent batch engine.
func BenchmarkCorpusConversion(b *testing.B) {
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	src := schema.CompanyV1()
	plan := figurePlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup := core.NewSupervisor()
		sup.Verify = false
		if _, err := sup.Run(context.Background(), src, nil, plan, nil, progs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedReconversion backs EXP-C5: re-converting the EXP-C1
// corpus with a shared conversion cache, cold (fresh cache every
// iteration) vs warm (cache primed once), across cache sizes.
func BenchmarkCachedReconversion(b *testing.B) {
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	src := schema.CompanyV1()
	plan := figurePlan()
	run := func(b *testing.B, cache *plancache.Cache) {
		sup := core.NewSupervisor()
		sup.Verify = false
		sup.Cache = cache
		if _, err := sup.Run(context.Background(), src, nil, plan, nil, progs); err != nil {
			b.Fatal(err)
		}
	}
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("cold/pairs=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, plancache.New(size))
			}
		})
		b.Run(fmt.Sprintf("warm/pairs=%d", size), func(b *testing.B) {
			cache := plancache.New(size)
			run(b, cache) // prime
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(b, cache)
			}
		})
	}
}

// BenchmarkStrategies backs EXP-C2: the same department query through the
// rewrite, emulation and bridge strategies against the restructured
// database.
func BenchmarkStrategies(b *testing.B) {
	prof := corpus.Profile{Seed: 42, Divisions: 8, DeptsPerDiv: 6, EmpsPerDept: 12}
	src := corpus.Database(prof)
	plan := figurePlan()
	target, err := plan.MigrateData(src)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("Rewrite", func(b *testing.B) {
		ev := mdml.NewEvaluator(target)
		f, _ := mdml.ParseFind(
			"FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'DIV-03'), DIV-DEPT, DEPT(DEPT-NAME = 'D-02'), DEPT-EMP, EMP)")
		for i := 0; i < b.N; i++ {
			ids, err := ev.Eval(f)
			if err != nil {
				b.Fatal(err)
			}
			_ = ev.Records(ids)
		}
	})
	b.Run("Emulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			em, err := emulate.NewSession(src.Schema(), target, plan)
			if err != nil {
				b.Fatal(err)
			}
			em.FindAny("DIV", value.FromPairs("DIV-NAME", "DIV-03"))
			match := value.FromPairs("DEPT-NAME", "D-02")
			st, err := em.FindInSet("DIV-EMP", netstore.First, match)
			for err == nil && st == netstore.OK {
				if _, _, gerr := em.Get("EMP"); gerr != nil {
					b.Fatal(gerr)
				}
				st, err = em.FindInSet("DIV-EMP", netstore.Next, match)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	sweep := func(db *netstore.DB) {
		s := netstore.NewSession(db)
		s.FindAny("DIV", value.FromPairs("DIV-NAME", "DIV-03"))
		match := value.FromPairs("DEPT-NAME", "D-02")
		st, _ := s.FindInSet("DIV-EMP", netstore.First, match)
		for st == netstore.OK {
			s.Get("EMP")
			st, _ = s.FindInSet("DIV-EMP", netstore.Next, match)
		}
	}
	b.Run("BridgeCold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			br, err := bridge.New(src.Schema(), target, plan)
			if err != nil {
				b.Fatal(err)
			}
			recon, err := br.Reconstruct()
			if err != nil {
				b.Fatal(err)
			}
			sweep(recon)
		}
	})
	b.Run("BridgeWarm", func(b *testing.B) {
		br, err := bridge.New(src.Schema(), target, plan)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recon, err := br.Reconstruct()
			if err != nil {
				b.Fatal(err)
			}
			sweep(recon)
		}
	})
}

// BenchmarkHierReorder backs EXP-C3: the Mehl & Wang order transformation
// and the command-substitution overhead.
func BenchmarkHierReorder(b *testing.B) {
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	for d := 0; d < 8; d++ {
		s.ISRT(value.FromPairs("D#", fmt.Sprintf("D%02d", d), "DNAME", "X", "MGR", "M"),
			hierstore.U("DEPT"))
		for e := 0; e < 10; e++ {
			s.ISRT(value.FromPairs("E#", fmt.Sprintf("E%02d-%02d", d, e), "ENAME", "N",
				"AGE", 20+e, "YEAR-OF-SERVICE", e),
				hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str(fmt.Sprintf("D%02d", d))),
				hierstore.U("EMP"))
		}
	}
	tr := xform.HierReorder{Promote: "EMP"}
	dstSchema, err := tr.ApplySchema(db.Schema())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Migrate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.MigrateData(db, dstSchema); err != nil {
				b.Fatal(err)
			}
		}
	})
	dst, _, err := tr.MigrateData(db, dstSchema)
	if err != nil {
		b.Fatal(err)
	}
	path := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D04")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.EQ, value.Of(5)),
	}
	b.Run("NativeGU", func(b *testing.B) {
		sess := hierstore.NewSession(db)
		for i := 0; i < b.N; i++ {
			if _, st := sess.GU(path...); st != hierstore.OK {
				b.Fatal(st)
			}
		}
	})
	b.Run("SubstitutedGU", func(b *testing.B) {
		sess := hierstore.NewSession(dst)
		for i := 0; i < b.N; i++ {
			if _, st := tr.EmulateGU(sess, "DEPT", path); st != hierstore.OK {
				b.Fatal(st)
			}
		}
	})
}

// BenchmarkIndexedFind backs EXP-C6: exact-key FIND ANY over 1000
// employees with the keyed record indexes on vs off. The match shape
// (EMP-NAME alone) is exactly the DIV-EMP set key, so the indexed run
// answers with a probe; the scan run walks byType order until the hit.
func BenchmarkIndexedFind(b *testing.B) {
	db := corpus.Database(corpus.Profile{Seed: 7, Divisions: 10, DeptsPerDiv: 10, EmpsPerDept: 10})
	match := value.FromPairs("EMP-NAME", "E-00500")
	run := func(b *testing.B) {
		b.Helper()
		b.ReportAllocs()
		s := netstore.NewSession(db)
		for i := 0; i < b.N; i++ {
			st, err := s.FindAny("EMP", match)
			if err != nil || st != netstore.OK {
				b.Fatal(st, err)
			}
		}
	}
	b.Run("Indexed", func(b *testing.B) { db.SetIndexing(true); run(b) })
	b.Run("Scan", func(b *testing.B) { db.SetIndexing(false); run(b) })
	db.SetIndexing(true)
}

// BenchmarkFusedMigration backs EXP-C6: a four-step fusible plan over a
// 1000-employee database as one fused pass vs four stepwise passes.
func BenchmarkFusedMigration(b *testing.B) {
	db := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		xform.RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		xform.AddField{Record: "EMPLOYEE", Field: "STATUS", Kind: value.String, Default: value.Str("ACTIVE")},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-EMPLOYEE"},
	}}
	b.Run("Fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.MigrateDataFused(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Stepwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.MigrateDataStepwise(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelMigration backs EXP-C7: the same four-step fusible
// plan over the same 1000-employee database, serial fused pass vs the
// sharded bulk-load rebuild at 1, 2 and 8 shard workers. The parallel
// path's output is byte-identical to Serial at every setting; what
// changes is wall-clock (with cores to spend) and allocations (the
// pooled staging buffers and slab-allocated occurrences).
func BenchmarkParallelMigration(b *testing.B) {
	db := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		xform.RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		xform.AddField{Record: "EMPLOYEE", Field: "STATUS", Kind: value.String, Default: value.Str("ACTIVE")},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-EMPLOYEE"},
	}}
	ctx := context.Background()
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.MigrateDataFused(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, par := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("Parallel%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Migrate(ctx, db, xform.MigrateOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInvertibility backs EXP-C4: auditing and inverting a plan.
func BenchmarkInvertibility(b *testing.B) {
	src := schema.CompanyV1()
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
		xform.IntroduceIntermediate{Set: "DIV-EMP", Inter: "DEPT",
			GroupField: "DEPT-NAME", Upper: "DIV-DEPT", Lower: "DEPT-EMP"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.InversePlan(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHazardDetection backs EXP-H1: the Program Analyzer over the
// labelled corpus.
func BenchmarkHazardDetection(b *testing.B) {
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		b.Fatal(err)
	}
	net := schema.CompanyV1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range members {
			analyzer.Analyze(context.Background(), m.Program, net)
		}
	}
}

// BenchmarkOptimizer measures the Figure 4.1 Optimizer's refinements
// (ablation support: run with and without to see the access-path effect).
func BenchmarkOptimizer(b *testing.B) {
	p := mustParse(b, `
PROGRAM QP DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(DIV-NAME = 'DIV-01')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	v2 := schema.CompanyV2()
	b.Run("Optimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.Optimize(context.Background(), p, v2)
		}
	})
	// Ablation: executing the unoptimized vs optimized query.
	db := netstore.NewDB(schema.CompanyV2())
	s := netstore.NewSession(db)
	for d := 0; d < 12; d++ {
		s.Store("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%02d", d), "DIV-LOC", "X"))
		for dep := 0; dep < 6; dep++ {
			s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%02d", d)))
			s.Store("DEPT", value.FromPairs("DEPT-NAME", fmt.Sprintf("D-%02d", dep)))
			for e := 0; e < 8; e++ {
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%02d-%02d-%02d", d, dep, e), "AGE", 30))
			}
		}
	}
	run := func(b *testing.B, prog *dbprog.Program) {
		b.Helper()
		stmt := prog.Stmts[0].(dbprog.MFind)
		ev := mdml.NewEvaluator(db)
		for i := 0; i < b.N; i++ {
			var err error
			if stmt.Sort != nil {
				_, err = ev.EvalSort(stmt.Sort)
			} else {
				_, err = ev.Eval(stmt.Find)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	opt, _ := optimizer.Optimize(context.Background(), p, v2)
	b.Run("ExecUnoptimized", func(b *testing.B) { run(b, p) })
	b.Run("ExecOptimized", func(b *testing.B) { run(b, opt) })
}
