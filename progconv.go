// Public API: the progconv package is the supported facade over the
// internal conversion framework. External callers convert a program
// inventory with Convert and never import internal/ packages — the
// types they need are re-exported here as aliases, so values returned
// by one facade function can be passed to another.
//
// # Error contract
//
// Convert fails with typed sentinel errors, checkable via errors.Is:
//
//   - ErrCanceled when ctx is canceled or its deadline passes mid-batch
//     (the error also matches ctx.Err());
//   - ErrHazardUnresolved when no explicit plan was given and the schema
//     diff is not explained by the transformation catalogue — a
//     Conversion Analyst must author the plan;
//   - ErrNotInvertible from plan-inversion helpers (InversePlan) when a
//     step loses information (Housel's restriction);
//   - ErrFailureBudget when the failure policy's tolerance is exhausted
//     — under the default FailFast policy, on the first program whose
//     pipeline broke (panic, expired budget, or retries-exhausted
//     error).
//
// All other errors wrap the failing stage's error via %w with the
// program name in the message.
//
// Convert is configured by functional options; doc.go holds the
// complete option table.
//
// # Resilience
//
// The supervisor isolates per-program faults: a panicking stage, an
// expired budget, or an error outlasting its retry allowance becomes a
// Failed outcome whose Audit.Failure records the evidence — under
// CollectErrors (or within Budget(n)'s tolerance) the rest of the batch
// still converts, and the Report stays byte-deterministic at any
// parallelism. Custom pipeline extensions signal retryable errors by
// wrapping them with Transient.
package progconv

import (
	"context"
	"io"
	"time"

	"progconv/internal/analyzer"
	"progconv/internal/core"
	"progconv/internal/dbprog"
	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/obs"
	"progconv/internal/plancache"
	"progconv/internal/schema"
	"progconv/internal/schema/ddl"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
	"progconv/internal/xform"
)

// Re-exported conversion results: a Report is one run's full record,
// one Outcome per submitted program, classified by Disposition.
type (
	Report      = core.Report
	Outcome     = core.Outcome
	Disposition = core.Disposition

	// Analyst answers the questions automation cannot; Policy is the
	// replayable non-interactive analyst. Issue (with its IssueKind
	// constants below) is the finding a Decide call is asked about, so
	// custom analysts are implementable without internal/ imports.
	Analyst   = core.Analyst
	Policy    = core.Policy
	Issue     = analyzer.Issue
	IssueKind = analyzer.IssueKind

	// The resilience surface: FailurePolicy decides what a Failed
	// program does to the batch; Failure and Retry are the audit
	// evidence behind Failed outcomes and transient-error retries.
	FailurePolicy = core.FailurePolicy
	Failure       = core.Failure
	FailureKind   = core.FailureKind
	Retry         = core.Retry

	// Metrics is the per-stage timing summary embedded in a Report when
	// the run was instrumented with WithMetrics; Recorder collects it and
	// Span is one completed stage execution.
	Metrics  = obs.Metrics
	Recorder = obs.Recorder
	Span     = obs.Span

	// The structured event log: Events of the listed EventKinds flow to a
	// Sink installed via WithEventSink. RingSink, JSONLSink and Tally are
	// the provided sinks; Audit and Decision are the per-outcome decision
	// trail.
	Event     = obs.Event
	EventKind = obs.EventKind
	Sink      = obs.Sink
	RingSink  = obs.RingSink
	JSONLSink = wire.JSONLSink
	Tally     = obs.Tally
	Audit     = core.Audit
	Decision  = core.Decision

	// The versioned wire schema (see internal/wire): JobSpec is the
	// conversion daemon's submission body, ProgramSpec one program of
	// its inventory, JobOptions the run options, JobStatus the status
	// document, WireReport the JSON rendering of a Report, and ExitCode
	// the exit-code table shared by the CLIs and the daemon's HTTP
	// status mapping. Re-exported here so servers and clients built on
	// the facade never import internal/ packages.
	JobSpec     = wire.JobSpec
	ProgramSpec = wire.ProgramSpec
	JobOptions  = wire.JobOptions
	JobStatus   = wire.JobStatus
	WireReport  = wire.Report
	ExitCode    = wire.ExitCode

	// The scale-out additions to the wire schema: JobList is one page
	// of GET /v1/jobs, ErrorDoc the body of every non-2xx response with
	// its machine-readable ErrorCode, and WorkerSpec/WorkerDoc/
	// WorkerList the coordinator's worker-registry documents (POST and
	// GET /v1/workers). The client package speaks these types.
	JobList    = wire.JobList
	ErrorDoc   = wire.ErrorDoc
	ErrorCode  = wire.ErrorCode
	WorkerSpec = wire.WorkerSpec
	WorkerDoc  = wire.WorkerDoc
	WorkerList = wire.WorkerList

	// Schema is a CODASYL network schema; Plan an ordered transformation
	// sequence; Program a parsed database program; Database a network
	// database instance. Aliases let external callers name values that
	// flow between facade functions.
	Schema   = schema.Network
	Plan     = xform.Plan
	Program  = dbprog.Program
	Database = netstore.DB

	// The hierarchical (IMS / DL/I) model's counterparts: Hierarchy is a
	// segment-tree schema, HierPlan an ordered sequence of hierarchical
	// reorders, HierDatabase a hierarchical database instance.
	Hierarchy    = schema.Hierarchy
	HierPlan     = xform.HierPlan
	HierDatabase = hierstore.DB

	// PairSpec describes one conversion pair in some data model for a
	// ConvertJobs batch; NetworkSpec and HierSpec are the two
	// implementations. A Job carrying no Spec converts its legacy
	// network-model fields.
	PairSpec    = core.PairSpec
	NetworkSpec = core.NetworkSpec
	HierSpec    = core.HierSpec

	// Cache is the shared conversion cache installed with WithCache:
	// pair-scoped artifacts plus per-program memos, content-addressed
	// and safe for concurrent Convert calls. CacheStats is its counter
	// snapshot. Job is one schema pair's workload for ConvertJobs.
	Cache      = plancache.Cache
	CacheStats = plancache.Stats
	Job        = core.Job

	// DataPlane is the data-plane fast-path counter block carried on a
	// Report: index probes vs full scans answering FIND requests during
	// verification, and fused vs stepwise migration passes.
	DataPlane = obs.DataPlane

	// The tracing surface: a TraceBuilder (WithTraceSink) folds the
	// event stream into a Trace — a span tree with one TraceID per run,
	// one TraceSpan per program, and child spans for stage attempts,
	// retries, cache probes, and verification passes. Span IDs derive
	// from the TraceID and each span's structural path, so the tree is
	// byte-identical at any parallelism once timing is omitted.
	Trace        = telemetry.Trace
	TraceBuilder = telemetry.TraceBuilder
	TraceSpan    = telemetry.Span
	SpanKind     = telemetry.SpanKind
	TraceID      = telemetry.TraceID
	SpanID       = telemetry.SpanID
)

// The span kinds a Trace contains.
const (
	SpanJob      = telemetry.KindJob
	SpanPhase    = telemetry.KindPhase
	SpanProgram  = telemetry.KindProgram
	SpanStage    = telemetry.KindStage
	SpanRetry    = telemetry.KindRetry
	SpanCache    = telemetry.KindCache
	SpanVerdict  = telemetry.KindVerdict
	SpanDecision = telemetry.KindDecision
	SpanHazard   = telemetry.KindHazard
	SpanFault    = telemetry.KindFault
)

// The dispositions.
const (
	Auto      = core.Auto
	Qualified = core.Qualified
	Manual    = core.Manual
	Failed    = core.Failed
)

// The issue kinds an Analyst may be consulted about (§3.2's
// automation-defeating features).
const (
	RunTimeVariability   = analyzer.RunTimeVariability
	OrderDependence      = analyzer.OrderDependence
	ProcessFirst         = analyzer.ProcessFirst
	StatusCodeDependence = analyzer.StatusCodeDependence
)

// The failure kinds recorded in Audit.Failure.
const (
	FailError   = core.FailError
	FailPanic   = core.FailPanic
	FailTimeout = core.FailTimeout
)

// WireVersion is the JSON wire schema generation ("v" field) stamped
// into every versioned document and event line the toolchain emits.
const WireVersion = wire.Version

// The data models the pipeline converts under, as named in job specs,
// audits, and reports.
const (
	ModelNetwork      = core.ModelNetwork
	ModelHierarchical = core.ModelHierarchical
)

// The shared exit-code table: what a CLI run exits with, and — via
// ExitCode.HTTPStatus — what the daemon serves a finished job's report
// with.
const (
	ExitOK       = wire.ExitOK
	ExitError    = wire.ExitError
	ExitUsage    = wire.ExitUsage
	ExitFailOn   = wire.ExitFailOn
	ExitPipeline = wire.ExitPipeline
)

// The machine-readable error codes carried on every non-2xx ErrorDoc;
// see the wire-schema section of the package documentation for the
// full table with HTTP statuses.
const (
	CodeBadSpec   = wire.CodeBadSpec
	CodeNotFound  = wire.CodeNotFound
	CodeQueueFull = wire.CodeQueueFull
	CodeDraining  = wire.CodeDraining
	CodeNoWorker  = wire.CodeNoWorker
	CodeDeadline  = wire.CodeDeadline
	CodeCanceled  = wire.CodeCanceled
	CodeFailed    = wire.CodeFailed
	CodeFailOn    = wire.CodeFailOn
	CodePipeline  = wire.CodePipeline
	CodeInternal  = wire.CodeInternal
)

// ErrorCodeFor maps an exit code onto the error-code table — the token
// CLI exit paths print and the daemon serves for the same condition.
func ErrorCodeFor(c ExitCode) ErrorCode { return wire.CodeFor(c) }

// The failure policies; Budget(n) builds the bounded-tolerance one.
var (
	FailFast      = core.FailFast
	CollectErrors = core.CollectErrors
)

// Budget returns a failure policy tolerating up to n-1 Failed programs
// and aborting the batch on the nth.
func Budget(n int) FailurePolicy { return core.Budget(n) }

// Transient marks a stage error as retryable; see WithRetries.
func Transient(err error) error { return core.Transient(err) }

// The event kinds.
const (
	EvStageStart = obs.EvStageStart
	EvStageEnd   = obs.EvStageEnd
	EvHazard     = obs.EvHazard
	EvRewrite    = obs.EvRewrite
	EvDecision   = obs.EvDecision
	EvVerify     = obs.EvVerify
	EvOutcome    = obs.EvOutcome
	EvRetry      = obs.EvRetry
	EvPanic      = obs.EvPanic
	EvTimeout    = obs.EvTimeout
	EvCacheHit   = obs.EvCacheHit
	EvCacheMiss  = obs.EvCacheMiss
	EvCacheEvict = obs.EvCacheEvict
)

// The sentinel errors; see the package error contract.
var (
	ErrCanceled         = core.ErrCanceled
	ErrNotInvertible    = xform.ErrNotInvertible
	ErrHazardUnresolved = xform.ErrHazardUnresolved
	ErrFailureBudget    = core.ErrFailureBudget
	ErrTransient        = core.ErrTransient
)

// options collects functional-option state for Convert.
type options struct {
	analyst              Analyst
	parallelism          int
	migrationParallelism int
	metrics              bool
	verifyDB             *Database
	verifyHierDB         *HierDatabase
	recorder             *Recorder
	sink                 Sink
	programTimeout       time.Duration
	stageTimeout         time.Duration
	analystTimeout       time.Duration
	retries              int
	retryBackoff         time.Duration
	failurePolicy        FailurePolicy
	cache                *Cache
	trace                *TraceBuilder
}

// Option configures one Convert run.
type Option func(*options)

// WithAnalyst supplies the Conversion Analyst consulted for qualified
// conversions (default: the strict Policy that accepts nothing). Decide
// calls are serialized even during parallel runs.
func WithAnalyst(a Analyst) Option {
	return func(o *options) { o.analyst = a }
}

// WithParallelism bounds the worker pool converting the inventory.
// Zero or negative (and the default) means runtime.GOMAXPROCS(0); 1
// forces a serial run. Reports are deterministic at any setting.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithMigrationParallelism bounds the shard workers of the data
// migration pass. Zero or negative (and the default) means
// runtime.GOMAXPROCS(0); 1 forces a serial migration. The migrated
// database, reports, event streams, and traces are byte-identical at
// any setting.
func WithMigrationParallelism(n int) Option {
	return func(o *options) { o.migrationParallelism = n }
}

// WithMetrics instruments the run: each program's analyze → convert →
// optimize → generate → verify chain is timed per stage and the summary
// lands in Report.Metrics.
func WithMetrics() Option {
	return func(o *options) { o.metrics = true }
}

// WithVerifyDB supplies a populated source database: Convert migrates
// it through the plan (Report.TargetDB) and verifies every automatic
// conversion I/O-equivalent against the migrated data (§1.1).
func WithVerifyDB(db *Database) Option {
	return func(o *options) { o.verifyDB = db }
}

// WithVerifyHierDB is WithVerifyDB for the hierarchical model: the
// database is migrated through the hierarchical plan
// (Report.TargetHierDB) and automatic conversions are verified against
// it. Consulted by ConvertHier only.
func WithVerifyHierDB(db *HierDatabase) Option {
	return func(o *options) { o.verifyHierDB = db }
}

// WithEventSink installs a structured event-log sink: every stage
// boundary, hazard finding, DML rewrite, Analyst decision, verification
// verdict and outcome is emitted as a typed Event. Within one program
// the events arrive in pipeline order at any parallelism. Compose sinks
// with MultiSink; a nil sink leaves the run unobserved.
func WithEventSink(s Sink) Option {
	return func(o *options) { o.sink = s }
}

// WithRecorder instruments the run with a caller-owned span recorder —
// like WithMetrics, but the recorder outlives the run so its per-program
// traces can feed WriteChromeTrace or span-level analysis. When both
// WithRecorder and WithMetrics are given, the recorder wins and
// Report.Metrics is snapshotted from it.
func WithRecorder(r *Recorder) Option {
	return func(o *options) { o.recorder = r }
}

// WithProgramTimeout budgets one program's whole analyze → verify
// chain; an expiry fails that program (Failed, FailTimeout evidence in
// its Audit), never the batch. Zero (the default) means unbounded.
func WithProgramTimeout(d time.Duration) Option {
	return func(o *options) { o.programTimeout = d }
}

// WithStageTimeout budgets each pipeline stage attempt. Zero (the
// default) means unbounded.
func WithStageTimeout(d time.Duration) Option {
	return func(o *options) { o.stageTimeout = d }
}

// WithAnalystTimeout budgets each Analyst.Decide call. An unresponsive
// analyst degrades to the strict-policy fallback: the consultation is
// recorded as a declined, timed-out Decision and the program routes to
// Manual. Zero (the default) means unbounded.
func WithAnalystTimeout(d time.Duration) Option {
	return func(o *options) { o.analystTimeout = d }
}

// WithRetries retries stage errors wrapped with Transient up to n
// times, pausing with capped exponential backoff starting at base (0 =
// the 50ms default). Backoff is deliberately jitter-free so audit
// trails and reports stay deterministic.
func WithRetries(n int, base time.Duration) Option {
	return func(o *options) { o.retries, o.retryBackoff = n, base }
}

// WithFailurePolicy decides what a Failed program does to the rest of
// the batch: FailFast (the default) aborts with ErrFailureBudget,
// CollectErrors completes the run around broken programs, Budget(n)
// tolerates n-1 failures.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(o *options) { o.failurePolicy = p }
}

// WithCache installs a shared conversion cache: the pair-scoped
// artifacts (classified plan, target schema, rewrite rules, path
// graph, cost tables) and per-program analysis/conversion memos are
// computed once per content fingerprint and reused across Convert and
// ConvertJobs calls. Reports are byte-identical with or without a
// cache. A nil cache leaves conversion uncached.
func WithCache(c *Cache) Option {
	return func(o *options) { o.cache = c }
}

// WithTraceSink installs a trace builder (NewTraceBuilder): the run's
// event stream is folded into its span tree alongside any WithEventSink
// sink, the builder rides the context next to the event emitter, and
// Convert attaches the finished tree as Report.Trace. The tree's
// structure — span IDs, parentage, order — is byte-identical at any
// parallelism; only the timing fields vary. ConvertJobs routes events
// into the builder too but leaves Report.Trace nil: one batch is one
// trace, and the caller holds the builder to Snapshot it.
func WithTraceSink(b *TraceBuilder) Option {
	return func(o *options) { o.trace = b }
}

// Convert converts a database application system: it classifies the
// src → dst schema change (or follows plan when non-nil, in which case
// dst may be nil), restructures the data given via WithVerifyDB, and
// converts every program concurrently on a bounded worker pool. The
// Report lists outcomes in submission order and is byte-identical
// across parallelism settings.
func Convert(ctx context.Context, src, dst *Schema, plan *Plan,
	programs []*Program, opts ...Option) (*Report, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sup := o.supervisor()
	sup.Verify = o.verifyDB != nil
	if o.trace != nil {
		names := make([]string, len(programs))
		for i, p := range programs {
			names[i] = p.Name
		}
		o.trace.SetPrograms(names)
		ctx = telemetry.WithTrace(ctx, o.trace)
	}
	report, err := sup.Run(ctx, src, dst, plan, o.verifyDB, programs)
	if err == nil && o.trace != nil {
		report.Trace = o.trace.Snapshot()
	}
	return report, err
}

// ConvertHier is Convert over the hierarchical (IMS / DL/I) model: it
// classifies the src → dst hierarchy change (or follows plan when
// non-nil, in which case dst may be nil), restructures the data given
// via WithVerifyHierDB, and converts every program. Same determinism
// and error contract as Convert.
func ConvertHier(ctx context.Context, src, dst *Hierarchy, plan *HierPlan,
	programs []*Program, opts ...Option) (*Report, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sup := o.supervisor()
	sup.Verify = o.verifyHierDB != nil
	if o.trace != nil {
		names := make([]string, len(programs))
		for i, p := range programs {
			names[i] = p.Name
		}
		o.trace.SetPrograms(names)
		ctx = telemetry.WithTrace(ctx, o.trace)
	}
	report, err := sup.RunHier(ctx, src, dst, plan, o.verifyHierDB, programs)
	if err == nil && o.trace != nil {
		report.Trace = o.trace.Snapshot()
	}
	return report, err
}

// ConvertJobs converts the inventories of many schema pairs in one
// batch on one shared worker pool: reports[i] belongs to jobs[i], is
// assembled at submission order, and is byte-identical at any
// parallelism. Jobs carrying a DB are migrated and their automatic
// conversions verified; the failure policy budget spans the whole
// batch. Combine with WithCache to reuse pair-scoped work across jobs
// and batches. WithVerifyDB is ignored here — each Job carries its own
// database.
func ConvertJobs(ctx context.Context, jobs []Job, opts ...Option) ([]*Report, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sup := o.supervisor()
	sup.Verify = true // per-job: only jobs with a DB verify
	if o.trace != nil {
		var names []string
		for _, j := range jobs {
			for _, p := range j.Programs {
				names = append(names, p.Name)
			}
		}
		o.trace.SetPrograms(names)
		ctx = telemetry.WithTrace(ctx, o.trace)
	}
	return sup.RunJobs(ctx, jobs)
}

// supervisor builds the configured core.Supervisor shared by Convert
// and ConvertJobs.
func (o *options) supervisor() *core.Supervisor {
	sup := core.NewSupervisor()
	if o.analyst != nil {
		sup.Analyst = o.analyst
	}
	sup.Parallelism = o.parallelism
	sup.MigrationParallelism = o.migrationParallelism
	rec := o.recorder
	if rec == nil && o.metrics {
		rec = obs.NewRecorder()
	}
	sup.Metrics = rec
	sup.Events = o.sink
	if o.trace != nil {
		sup.Events = obs.MultiSink(o.trace, o.sink)
	}
	sup.ProgramTimeout = o.programTimeout
	sup.StageTimeout = o.stageTimeout
	sup.AnalystTimeout = o.analystTimeout
	sup.Retries = o.retries
	sup.RetryBackoff = o.retryBackoff
	sup.FailurePolicy = o.failurePolicy
	sup.Cache = o.cache
	return sup
}

// NewCache returns a conversion cache retaining up to maxPairs pair
// contexts (<= 0 means 64), plus generously bounded per-program memos.
// Install it with WithCache; one cache may serve any number of
// concurrent Convert and ConvertJobs calls.
func NewCache(maxPairs int) *Cache { return plancache.New(maxPairs) }

// NewRecorder returns a span recorder for WithRecorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NewRingSink returns a bounded in-memory event sink keeping the newest
// capacity events.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewJSONLSink returns a sink streaming events to w as wire-versioned
// JSON lines.
func NewJSONLSink(w io.Writer) *JSONLSink { return wire.NewJSONLSink(w) }

// NewTally returns a counter-folding sink for metrics export.
func NewTally() *Tally { return obs.NewTally() }

// MultiSink composes event sinks; nils are skipped.
func MultiSink(sinks ...Sink) Sink { return obs.MultiSink(sinks...) }

// EncodeJSONL writes captured events one wire-versioned JSON object
// per line; omitTiming drops the wall-clock fields for byte-stable
// output.
func EncodeJSONL(w io.Writer, events []Event, omitTiming bool) error {
	return wire.EncodeJSONL(w, events, omitTiming)
}

// EncodeReportJSON writes the wire-versioned JSON document for a
// Report — the same bytes the progconvd daemon serves for a finished
// job and the CLI's -report-json flag writes, deterministic at any
// parallelism.
func EncodeReportJSON(w io.Writer, r *Report) error {
	return wire.EncodeReport(w, r)
}

// ExitCodeFor classifies a completed run against the shared exit-code
// table: ExitPipeline (4) when programs failed in the pipeline,
// ExitFailOn (3) when the failOn gate ("manual" or "qualified") trips,
// ExitOK otherwise. The message explains a non-zero code.
func ExitCodeFor(r *Report, failOn string) (ExitCode, string) {
	return wire.ExitFor(r, failOn)
}

// WriteChromeTrace exports a recorder's spans as Chrome trace_event JSON
// loadable in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	return obs.WriteChromeTrace(w, r)
}

// NewTraceBuilder starts a trace for WithTraceSink: id becomes the
// TraceID (DeriveTraceID, or an inbound traceparent's), name the root
// span's display name.
func NewTraceBuilder(id TraceID, name string) *TraceBuilder {
	return telemetry.NewTraceBuilder(id, name)
}

// DeriveTraceID derives a deterministic TraceID from content parts —
// hash the run's inputs (and a submission index) rather than a clock,
// so re-running the same job yields the same trace identity.
func DeriveTraceID(parts ...string) TraceID {
	return telemetry.DeriveTraceID(parts...)
}

// ParseTraceparent parses a W3C traceparent header into its trace and
// parent-span IDs, rejecting malformed headers — the inbound half of
// cross-process trace propagation.
func ParseTraceparent(h string) (TraceID, SpanID, error) {
	return telemetry.ParseTraceparent(h)
}

// Traceparent renders the W3C traceparent header for a trace/span pair
// — the outbound half of cross-process trace propagation.
func Traceparent(t TraceID, s SpanID) string {
	return telemetry.Traceparent(t, s)
}

// EncodeTraceJSON writes a span tree as the wire-versioned JSON
// document the daemon serves at /v1/jobs/{id}/trace; omitTiming drops
// the wall-clock fields for byte-stable output.
func EncodeTraceJSON(w io.Writer, tr *Trace, omitTiming bool) error {
	return wire.EncodeTrace(w, tr, omitTiming)
}

// WriteTraceChrome renders a span tree as Chrome trace_event JSON
// loadable in chrome://tracing or Perfetto — the span-tree successor
// of WriteChromeTrace's recorder rendering, carrying cache probes,
// retries, verdicts, and faults alongside the stage spans.
func WriteTraceChrome(w io.Writer, tr *Trace) error {
	return telemetry.WriteChromeTrace(w, tr)
}

// WritePrometheus renders a tally (and optionally a Report's Metrics)
// in Prometheus text exposition format. A nil tally is valid — only the
// metrics sections are written — so runs instrumented with WithMetrics
// alone export without constructing a Tally.
func WritePrometheus(w io.Writer, t *Tally, m *Metrics) error {
	return t.WritePrometheus(w, m)
}

// ParseProgram parses database-program source text in any of the four
// embedded DML dialects.
func ParseProgram(src string) (*Program, error) { return dbprog.Parse(src) }

// FormatProgram renders a (converted) program back to source text.
func FormatProgram(p *Program) string { return dbprog.Format(p) }

// NewDatabase returns an empty network database instance over s, ready
// to populate and hand to WithVerifyDB.
func NewDatabase(s *Schema) *Database { return netstore.NewDB(s) }

// NewHierDatabase returns an empty hierarchical database instance over
// h, ready to populate and hand to WithVerifyHierDB.
func NewHierDatabase(h *Hierarchy) *HierDatabase { return hierstore.NewDB(h) }

// ParseNetworkSchema parses Figure 4.3-style network DDL.
func ParseNetworkSchema(src string) (*Schema, error) { return ddl.ParseNetwork(src) }

// ParseHierarchySchema parses SEGMENT-form hierarchy DDL.
func ParseHierarchySchema(src string) (*Hierarchy, error) { return ddl.ParseHierarchy(src) }

// Classify infers the transformation plan explaining a src → dst schema
// change, failing with ErrHazardUnresolved for changes outside the
// catalogue.
func Classify(src, dst *Schema) (*Plan, error) { return xform.Classify(src, dst) }

// ClassifyHier infers the hierarchical plan explaining a src → dst
// hierarchy change — identity or a catalogued root promotion; anything
// else needs an explicit plan.
func ClassifyHier(src, dst *Hierarchy) (*HierPlan, error) { return xform.ClassifyHier(src, dst) }
