module progconv

go 1.22
