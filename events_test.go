package progconv

// Event-log acceptance tests from the ISSUE: the JSONL stream for a
// serial Figure 4.3 conversion is pinned byte-for-byte by a golden file
// (timing omitted), and each program's event subsequence is identical
// at -parallel 8 — the order guarantee instrumentation consumers build
// on.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func eventDB(t *testing.T) *Database {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

func eventPrograms(t *testing.T) []*Program {
	t.Helper()
	var progs []*Program
	for _, src := range []string{`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`, `
PROGRAM COUNT-SALES DIALECT NETWORK.
  LET N = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'SALES EMPLOYEES', N.
END PROGRAM.
`, `
PROGRAM PRINT-ALL DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

// TestEventLogGoldenJSONL pins the serial event stream for the
// 3-program Figure 4.3 conversion. Regenerate with
//
//	UPDATE_GOLDEN=1 go test -run EventLogGolden .
func TestEventLogGoldenJSONL(t *testing.T) {
	ring := NewRingSink(4096)
	report, err := Convert(t.Context(), schema.CompanyV1(), schema.CompanyV2(), nil,
		eventPrograms(t), WithParallelism(1), WithEventSink(ring), WithVerifyDB(eventDB(t)))
	if err != nil {
		t.Fatal(err)
	}
	if dropped := ring.Dropped(); dropped != 0 {
		t.Fatalf("ring dropped %d events; raise its capacity", dropped)
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, ring.Events(), true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "events.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event stream diverged from %s (set UPDATE_GOLDEN=1 to regenerate)\n--- got ---\n%s",
			golden, buf.String())
	}
	// Sanity: the observed run still produced the expected dispositions.
	auto, qualified, manual := report.Counts()
	if auto != 2 || qualified != 0 || manual != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/0/1", auto, qualified, manual)
	}
}

// TestEventOrderDeterministicPerProgram: at -parallel 8 the global
// interleaving varies, but each program's own event subsequence is
// byte-identical to the serial run once the global coordinates (Seq,
// wall-clock) are masked.
func TestEventOrderDeterministicPerProgram(t *testing.T) {
	capture := func(parallelism int) map[string][]Event {
		ring := NewRingSink(8192)
		_, err := Convert(t.Context(), schema.CompanyV1(), schema.CompanyV2(), nil,
			eventPrograms(t), WithParallelism(parallelism), WithEventSink(ring),
			WithVerifyDB(eventDB(t)))
		if err != nil {
			t.Fatal(err)
		}
		perProg := map[string][]Event{}
		for _, ev := range ring.Events() {
			ev.Seq, ev.T, ev.Dur = 0, 0, 0
			perProg[ev.Prog] = append(perProg[ev.Prog], ev)
		}
		return perProg
	}
	serial := capture(1)
	if len(serial) != 3 {
		t.Fatalf("serial run instrumented %d programs, want 3", len(serial))
	}
	for round := 0; round < 3; round++ {
		parallel := capture(8)
		for prog, want := range serial {
			if got := parallel[prog]; !reflect.DeepEqual(got, want) {
				t.Errorf("round %d: %s event subsequence differs at parallelism 8:\nserial   %+v\nparallel %+v",
					round, prog, want, got)
			}
		}
	}
}
