package progconv

// Facade tests for the shared conversion cache: cached runs are
// byte-identical to uncached ones, cache traffic is observable through
// the exported Prometheus counters, and one Cache survives being
// hammered by many concurrent Convert calls (run under `go test -race`).

import (
	"context"
	"strings"
	"sync"
	"testing"

	"progconv/internal/corpus"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// TestSharedCacheHitsExported: two Convert calls sharing one cache — the
// second run registers pair and memo hits in progconv_cache_hits_total,
// and both reports are byte-identical to an uncached run.
func TestSharedCacheHitsExported(t *testing.T) {
	progs := corpusPrograms(t)
	base, err := Convert(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, progs,
		WithVerifyDB(corpus.Database(corpus.PeriodProfile(42))))
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache(8)
	tally := NewTally()
	for i := 0; i < 2; i++ {
		report, err := Convert(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, progs,
			WithVerifyDB(corpus.Database(corpus.PeriodProfile(42))),
			WithCache(cache), WithEventSink(tally))
		if err != nil {
			t.Fatal(err)
		}
		if report.String() != base.String() {
			t.Fatalf("cached run %d differs from uncached:\n%s\nvs\n%s", i, report, base)
		}
	}

	var buf strings.Builder
	if err := WritePrometheus(&buf, tally, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`progconv_cache_hits_total{scope="pair"} 1`,
		`progconv_cache_misses_total{scope="pair"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `progconv_cache_hits_total{scope="analysis"}`) {
		t.Errorf("no analysis-scope hits exported:\n%s", out)
	}
	s := cache.Stats()
	if s.PairHits != 1 || s.PairMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestConvertJobsFacade: one batch converts three distinct schema pairs
// on one pool and one cache; sub-reports are deterministic across
// parallelism.
func TestConvertJobsFacade(t *testing.T) {
	jobs := func(t *testing.T) []Job {
		return []Job{
			{Src: schema.CompanyV1(), Dst: schema.CompanyV2(),
				DB: corpus.Database(corpus.PeriodProfile(42)), Programs: corpusPrograms(t)},
			{Src: schema.CompanyV1(), Plan: figurePlan(), Programs: corpusPrograms(t)},
			{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
				xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
			}}, Programs: corpusPrograms(t)},
		}
	}
	cache := NewCache(8)
	serial, err := ConvertJobs(context.Background(), jobs(t), WithParallelism(1), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3 {
		t.Fatalf("got %d reports", len(serial))
	}
	par, err := ConvertJobs(context.Background(), jobs(t), WithParallelism(8), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].String() != par[i].String() {
			t.Errorf("job %d: serial and parallel sub-reports differ:\n%s\nvs\n%s",
				i, serial[i], par[i])
		}
	}
	if s := cache.Stats(); s.PairMisses != 3 || s.PairHits < 3 {
		t.Errorf("stats = %+v", s)
	}
}

// TestConcurrentConvertsShareOneCache: many goroutines run Convert over
// a mix of schema pairs against one shared cache; every report must
// match its pair's reference run. The interesting assertions are the
// race detector's.
func TestConcurrentConvertsShareOneCache(t *testing.T) {
	progs := corpusPrograms(t)[:12]
	type variant struct {
		dst    *Schema
		plan   *Plan
		verify bool
	}
	variants := []variant{
		{dst: schema.CompanyV2(), verify: true},
		{plan: figurePlan()},
		{plan: &xform.Plan{Steps: []xform.Transformation{
			xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
		}}},
	}
	run := func(v variant, cache *Cache) string {
		opts := []Option{WithParallelism(4)}
		if cache != nil {
			opts = append(opts, WithCache(cache))
		}
		if v.verify {
			opts = append(opts, WithVerifyDB(corpus.Database(corpus.PeriodProfile(42))))
		}
		report, err := Convert(context.Background(), schema.CompanyV1(), v.dst, v.plan, progs, opts...)
		if err != nil {
			t.Error(err)
			return ""
		}
		return report.String()
	}
	want := make([]string, len(variants))
	for i, v := range variants {
		want[i] = run(v, nil)
	}

	cache := NewCache(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				vi := (g + i) % len(variants)
				if got := run(variants[vi], cache); got != want[vi] {
					t.Errorf("goroutine %d, variant %d: cached report diverged", g, vi)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := cache.Stats(); s.PairMisses != int64(len(variants)) {
		t.Errorf("pair misses = %d, want %d (singleflight across goroutines)",
			s.PairMisses, len(variants))
	}
}
